#include "sim/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

namespace rc::sim {

void MinMaxMean::add(double v) {
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  sum_ += v;
  ++count_;
}

void MinMaxMean::merge(const MinMaxMean& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  count_ += other.count_;
}

void MinMaxMean::reset() { *this = MinMaxMean{}; }

double MinMaxMean::min() const { return count_ ? min_ : 0; }
double MinMaxMean::max() const { return count_ ? max_ : 0; }
double MinMaxMean::mean() const {
  return count_ ? sum_ / static_cast<double>(count_) : 0;
}

namespace {
// 64 coarse powers of two, each split into 32 linear sub-buckets.
constexpr std::size_t kSubBuckets = 32;
constexpr std::size_t kNumBuckets = 64 * kSubBuckets;
}  // namespace

LatencyDigest::LatencyDigest() : buckets_(kNumBuckets, 0) {}

std::size_t LatencyDigest::bucketFor(Duration v) {
  if (v < 0) v = 0;
  const auto u = static_cast<std::uint64_t>(v);
  if (u < kSubBuckets) return static_cast<std::size_t>(u);
  const int log = 63 - std::countl_zero(u);
  const std::size_t sub =
      static_cast<std::size_t>((u >> (log - 5)) & (kSubBuckets - 1));
  const std::size_t idx =
      static_cast<std::size_t>(log - 4) * kSubBuckets + sub;
  return std::min(idx, kNumBuckets - 1);
}

Duration LatencyDigest::bucketUpper(std::size_t b) {
  if (b < kSubBuckets) return static_cast<Duration>(b);
  const std::size_t log = b / kSubBuckets + 4;
  const std::size_t sub = b % kSubBuckets;
  const std::uint64_t base = 1ULL << log;
  const std::uint64_t width = base / kSubBuckets;
  return static_cast<Duration>(base + (sub + 1) * width - 1);
}

void LatencyDigest::add(Duration v) {
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  sum_ += static_cast<double>(v);
  ++count_;
  ++buckets_[bucketFor(v)];
}

void LatencyDigest::merge(const LatencyDigest& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  for (std::size_t i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  sum_ += other.sum_;
  count_ += other.count_;
}

void LatencyDigest::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = max_ = 0;
}

double LatencyDigest::mean() const {
  return count_ ? sum_ / static_cast<double>(count_) : 0;
}

Duration LatencyDigest::percentile(double q) const {
  if (count_ == 0) return 0;
  // Degenerate quantiles answer exactly, without touching the buckets: q=0
  // is the minimum and q=1 the maximum by definition.
  if (q <= 0) return min_;
  if (q >= 1) return max_;
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= target && buckets_[i] > 0) {
      // A log bucket's upper bound can overshoot the samples it holds by up
      // to one sub-bucket width (~2.4%). Clamping into [min, max] keeps
      // every quantile inside the observed range, so p99 of a 1-sample or
      // all-equal histogram is the sample itself, not an interpolation.
      return std::clamp(bucketUpper(i), min_, max_);
    }
  }
  return max_;
}

double TimeSeries::meanValue() const {
  if (points_.empty()) return 0;
  double s = 0;
  for (const auto& p : points_) s += p.value;
  return s / static_cast<double>(points_.size());
}

double TimeSeries::maxValue() const {
  double m = points_.empty() ? 0 : points_.front().value;
  for (const auto& p : points_) m = std::max(m, p.value);
  return m;
}

double TimeSeries::minValue() const {
  double m = points_.empty() ? 0 : points_.front().value;
  for (const auto& p : points_) m = std::min(m, p.value);
  return m;
}

double TimeSeries::meanInWindow(SimTime from, SimTime to) const {
  double s = 0;
  std::uint64_t n = 0;
  for (const auto& p : points_) {
    if (p.time >= from && p.time < to) {
      s += p.value;
      ++n;
    }
  }
  return n ? s / static_cast<double>(n) : 0;
}

double TimeSeries::stepIntegral(SimTime end) const {
  if (points_.empty()) return 0;
  double area = 0;
  for (std::size_t i = 0; i + 1 < points_.size(); ++i) {
    area += points_[i].value * toSeconds(points_[i + 1].time - points_[i].time);
  }
  if (end > points_.back().time) {
    area += points_.back().value * toSeconds(end - points_.back().time);
  }
  return area;
}

std::string TimeSeries::toCsv(const std::string& header) const {
  std::ostringstream os;
  os << "time_s," << header << "\n";
  for (const auto& p : points_) {
    os << toSeconds(p.time) << "," << p.value << "\n";
  }
  return os.str();
}

void TimeWeightedValue::set(SimTime t, double value) {
  if (!started_) {
    started_ = true;
    startTime_ = t;
    lastTime_ = t;
    value_ = value;
    return;
  }
  if (t > lastTime_) {
    integral_ += value_ * toSeconds(t - lastTime_);
    lastTime_ = t;
  }
  value_ = value;
}

double TimeWeightedValue::integralTo(SimTime t) const {
  double r = integral_;
  if (started_ && t > lastTime_) r += value_ * toSeconds(t - lastTime_);
  return r;
}

double OpCounter::rate(std::uint64_t startCount, std::uint64_t endCount,
                       SimTime from, SimTime to) {
  // Zero-length (or inverted) windows and counter resets (endCount behind
  // startCount, e.g. across a process crash) both yield 0 instead of
  // dividing by zero / wrapping the unsigned difference.
  if (to <= from || endCount < startCount) return 0;
  return static_cast<double>(endCount - startCount) / toSeconds(to - from);
}

}  // namespace rc::sim
