#pragma once

#include <cstdint>
#include <limits>

namespace rc::sim {

/// Deterministic PCG32 random number generator (O'Neill, PCG-XSH-RR).
///
/// Every stochastic decision in the simulator draws from an Rng seeded from
/// the experiment seed, so a run is exactly reproducible given its seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
               std::uint64_t stream = 0xda3e39cb94b95bdbULL);

  /// Uniform 32-bit value.
  std::uint32_t next32();

  /// Uniform 64-bit value.
  std::uint64_t next64();

  /// Uniform integer in [0, bound) without modulo bias. bound must be > 0.
  std::uint64_t uniformInt(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniformRange(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniformDouble();

  /// Exponentially distributed double with the given mean (> 0).
  double exponential(double mean);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Derive an independent child generator; deterministic in (state, n).
  Rng fork(std::uint64_t n);

  // Satisfy UniformRandomBitGenerator so <algorithm> shuffles accept Rng.
  using result_type = std::uint32_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() { return next32(); }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

}  // namespace rc::sim
