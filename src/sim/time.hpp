#pragma once

#include <cstdint>

namespace rc::sim {

/// Simulated time, in nanoseconds since the start of the simulation.
/// 64 signed bits cover ~292 years, far beyond any experiment here.
using SimTime = std::int64_t;

/// A span of simulated time, in nanoseconds.
using Duration = std::int64_t;

constexpr Duration nsec(std::int64_t n) { return n; }
constexpr Duration usec(std::int64_t n) { return n * 1'000; }
constexpr Duration msec(std::int64_t n) { return n * 1'000'000; }
constexpr Duration seconds(std::int64_t n) { return n * 1'000'000'000; }

/// Fractional helpers (used by calibrated service-time parameters).
constexpr Duration usecF(double n) { return static_cast<Duration>(n * 1e3); }
constexpr Duration msecF(double n) { return static_cast<Duration>(n * 1e6); }
constexpr Duration secondsF(double n) { return static_cast<Duration>(n * 1e9); }

constexpr double toSeconds(Duration d) { return static_cast<double>(d) / 1e9; }
constexpr double toMillis(Duration d) { return static_cast<double>(d) / 1e6; }
constexpr double toMicros(Duration d) { return static_cast<double>(d) / 1e3; }

}  // namespace rc::sim
