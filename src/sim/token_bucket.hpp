#pragma once

#include <algorithm>

#include "sim/time.hpp"

namespace rc::sim {

/// Shared token-bucket rate limiter (the paper's §IX "request throttling"
/// mitigation, Fig. 13 — e.g. Facebook's memcached back-off clients).
///
/// Two consumption styles, for the two sides of the wire:
///  - reserve(): client-side pacing — the token is always committed (balance
///    may go negative) and the caller sleeps out the returned debt. Used by
///    YCSB client throttles and the client retry budget.
///  - tryAcquire(): server-side policing — consume only if a whole token is
///    available; on failure the caller bounces the request (dispatch tenant
///    QoS, docs/WORKLOADS.md) instead of queueing it.
class TokenBucket {
 public:
  /// ratePerSec <= 0 disables throttling. burst is the bucket depth.
  TokenBucket(double ratePerSec, double burst = 1.0)
      : rate_(ratePerSec), burst_(std::max(burst, 1.0)), tokens_(burst_) {}

  bool enabled() const { return rate_ > 0; }

  /// Consume one token; returns how long the caller must wait before the
  /// operation may be issued (0 if a token was available).
  sim::Duration reserve(sim::SimTime now) {
    if (!enabled()) return 0;
    refill(now);
    if (tokens_ >= 1.0) {
      tokens_ -= 1.0;
      return 0;
    }
    const double deficit = 1.0 - tokens_;
    tokens_ -= 1.0;  // token is committed; balance goes negative
    return sim::secondsF(deficit / rate_);
  }

  /// Consume one token only if available right now; never goes into debt.
  bool tryAcquire(sim::SimTime now) {
    if (!enabled()) return true;
    refill(now);
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

  /// Time until a whole token accumulates (0 if one is already available).
  /// Does not consume; the retry-after hint for a bounced request.
  sim::Duration timeToToken(sim::SimTime now) {
    if (!enabled()) return 0;
    refill(now);
    if (tokens_ >= 1.0) return 0;
    return sim::secondsF((1.0 - tokens_) / rate_);
  }

  double rate() const { return rate_; }

 private:
  void refill(sim::SimTime now) {
    if (now <= last_) return;
    tokens_ = std::min(burst_,
                       tokens_ + rate_ * sim::toSeconds(now - last_));
    last_ = now;
  }

  double rate_;
  double burst_;
  double tokens_;
  sim::SimTime last_ = 0;
};

}  // namespace rc::sim
