#pragma once

#include <cstdint>
#include <functional>

#include "sim/event_heap.hpp"
#include "sim/inline_task.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace rc::sim {

/// Deterministic discrete-event simulation kernel.
///
/// Events are (time, callback) pairs executed in nondecreasing time order;
/// ties are broken by scheduling order, which makes runs fully deterministic.
/// Callbacks are InlineTasks (no heap allocation for common lambda sizes)
/// stored in an indexed 4-ary heap, so cancellation removes the event
/// eagerly in O(log n) instead of tombstoning it.
class Simulation {
 public:
  using Callback = InlineTask;

  explicit Simulation(std::uint64_t seed = 1);

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedule `cb` to run `delay` from now (delay < 0 is clamped to 0).
  EventId schedule(Duration delay, Callback cb);

  /// Schedule `cb` at absolute time `t` (clamped to now if in the past).
  EventId scheduleAt(SimTime t, Callback cb);

  /// Cancel a pending event. Cancelling an already-run or invalid id is a
  /// harmless no-op.
  void cancel(EventId id);

  /// Run events until the queue is empty or `stop()` is called.
  /// Returns the number of events executed.
  std::uint64_t run();

  /// Run events with time <= t, then set now() = t (if not stopped earlier).
  /// Returns the number of events executed.
  std::uint64_t runUntil(SimTime t);

  /// Convenience: runUntil(now() + d).
  std::uint64_t runFor(Duration d) { return runUntil(now_ + d); }

  /// Request that run()/runUntil() return after the current event.
  void stop() { stopped_ = true; }

  bool stopped() const { return stopped_; }

  /// Clear the stop flag so the simulation can be resumed.
  void clearStop() { stopped_ = false; }

  /// Number of events still pending. Cancelled events are removed eagerly,
  /// so they never count here.
  std::size_t pendingEvents() const { return heap_.size(); }

  /// Total events executed since construction.
  std::uint64_t eventsExecuted() const { return executed_; }

  /// Root random generator for this simulation.
  Rng& rng() { return rng_; }

 private:
  bool popAndRunOne(SimTime limit);

  SimTime now_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
  EventHeap heap_;
  Rng rng_;
};

/// Repeats a callback at a fixed interval until cancelled or destroyed.
/// The callback runs first at `start + interval`.
class PeriodicTask {
 public:
  PeriodicTask(Simulation& sim, Duration interval,
               std::function<void(SimTime)> fn);
  ~PeriodicTask();

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void cancel();
  bool active() const { return active_; }

 private:
  void arm();

  Simulation& sim_;
  Duration interval_;
  std::function<void(SimTime)> fn_;
  EventId pending_ = kInvalidEvent;
  bool active_ = true;
};

}  // namespace rc::sim
