#include "sim/simulation.hpp"

#include <limits>
#include <utility>

namespace rc::sim {

Simulation::Simulation(std::uint64_t seed) : rng_(seed) {}

EventId Simulation::schedule(Duration delay, Callback cb) {
  if (delay < 0) delay = 0;
  return scheduleAt(now_ + delay, std::move(cb));
}

EventId Simulation::scheduleAt(SimTime t, Callback cb) {
  if (t < now_) t = now_;
  const EventId id = nextId_++;
  queue_.push(Entry{t, id, std::move(cb)});
  return id;
}

void Simulation::cancel(EventId id) {
  if (id != kInvalidEvent) cancelled_.insert(id);
}

bool Simulation::popAndRunOne(SimTime limit) {
  while (!queue_.empty()) {
    const Entry& top = queue_.top();
    if (top.time > limit) return false;
    if (auto it = cancelled_.find(top.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      queue_.pop();
      continue;
    }
    // Move the callback out before popping so it survives the pop.
    Callback cb = std::move(const_cast<Entry&>(top).cb);
    now_ = top.time;
    queue_.pop();
    ++executed_;
    cb();
    return true;
  }
  return false;
}

std::uint64_t Simulation::run() {
  std::uint64_t n = 0;
  while (!stopped_ && popAndRunOne(std::numeric_limits<SimTime>::max())) ++n;
  return n;
}

std::uint64_t Simulation::runUntil(SimTime t) {
  std::uint64_t n = 0;
  while (!stopped_ && popAndRunOne(t)) ++n;
  if (!stopped_ && now_ < t) now_ = t;
  return n;
}

PeriodicTask::PeriodicTask(Simulation& sim, Duration interval,
                           std::function<void(SimTime)> fn)
    : sim_(sim), interval_(interval), fn_(std::move(fn)) {
  arm();
}

PeriodicTask::~PeriodicTask() { cancel(); }

void PeriodicTask::cancel() {
  if (!active_) return;
  active_ = false;
  sim_.cancel(pending_);
  pending_ = kInvalidEvent;
}

void PeriodicTask::arm() {
  pending_ = sim_.schedule(interval_, [this] {
    if (!active_) return;
    fn_(sim_.now());
    if (active_) arm();
  });
}

}  // namespace rc::sim
