#include "sim/simulation.hpp"

#include <limits>
#include <utility>

namespace rc::sim {

Simulation::Simulation(std::uint64_t seed) : rng_(seed) {}

EventId Simulation::schedule(Duration delay, Callback cb) {
  if (delay < 0) delay = 0;
  return scheduleAt(now_ + delay, std::move(cb));
}

EventId Simulation::scheduleAt(SimTime t, Callback cb) {
  if (t < now_) t = now_;
  return heap_.push(t, std::move(cb));
}

void Simulation::cancel(EventId id) {
  if (id != kInvalidEvent) heap_.cancel(id);
}

bool Simulation::popAndRunOne(SimTime limit) {
  if (heap_.empty() || heap_.topTime() > limit) return false;
  SimTime t;
  Callback cb = heap_.popTop(&t);
  now_ = t;
  ++executed_;
  cb();
  return true;
}

std::uint64_t Simulation::run() {
  std::uint64_t n = 0;
  while (!stopped_ && popAndRunOne(std::numeric_limits<SimTime>::max())) ++n;
  return n;
}

std::uint64_t Simulation::runUntil(SimTime t) {
  std::uint64_t n = 0;
  while (!stopped_ && popAndRunOne(t)) ++n;
  if (!stopped_ && now_ < t) now_ = t;
  return n;
}

PeriodicTask::PeriodicTask(Simulation& sim, Duration interval,
                           std::function<void(SimTime)> fn)
    : sim_(sim), interval_(interval), fn_(std::move(fn)) {
  arm();
}

PeriodicTask::~PeriodicTask() { cancel(); }

void PeriodicTask::cancel() {
  if (!active_) return;
  active_ = false;
  sim_.cancel(pending_);
  pending_ = kInvalidEvent;
}

void PeriodicTask::arm() {
  pending_ = sim_.schedule(interval_, [this] {
    if (!active_) return;
    fn_(sim_.now());
    if (active_) arm();
  });
}

}  // namespace rc::sim
