#include "sim/fifo_lock.hpp"

#include <utility>

namespace rc::sim {

bool FifoLock::acquire(Grant grant) {
  if (!held_) {
    held_ = true;
    ++acquisitions_;
    grant();
    return true;
  }
  waiters_.push_back(std::move(grant));
  return false;
}

void FifoLock::release() {
  if (waiters_.empty()) {
    held_ = false;
    return;
  }
  Grant next = std::move(waiters_.front());
  waiters_.pop_front();
  ++acquisitions_;
  next();
}

}  // namespace rc::sim
