#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace rc::sim {

/// Capped exponential backoff with deterministic jitter.
///
/// delay(attempt, salt) = target * j where target = min(cap, base << attempt)
/// and j in [0.5, 1.0) is derived by hashing (salt, attempt) — no shared RNG
/// stream, so concurrent retry loops (client ops, replica repair, overload
/// bounces) stay independent and every run of the same schedule is
/// bit-identical.
struct Backoff {
  Duration base = msec(1);
  Duration cap = msec(200);

  static std::uint64_t mix(std::uint64_t x) {
    // splitmix64 finalizer: full-avalanche, cheap, stable across platforms.
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  Duration delay(int attempt, std::uint64_t salt) const {
    const int shift = attempt < 0 ? 0 : (attempt > 30 ? 30 : attempt);
    Duration target = base << shift;
    if (target > cap || target <= 0) target = cap;
    const std::uint64_t h =
        mix(salt * 0x100000001b3ULL + static_cast<std::uint64_t>(shift));
    const double frac = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
    return target / 2 +
           static_cast<Duration>(static_cast<double>(target / 2) * frac);
  }
};

}  // namespace rc::sim
