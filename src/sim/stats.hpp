#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace rc::sim {

/// Streaming min / max / mean / count over doubles.
class MinMaxMean {
 public:
  void add(double v);
  void merge(const MinMaxMean& other);
  void reset();

  std::uint64_t count() const { return count_; }
  double min() const;
  double max() const;
  double mean() const;
  double sum() const { return sum_; }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Fixed-size log-bucketed quantile digest: 64 powers of two, each split
/// into 32 linear sub-buckets (~2.4% relative bucket width), nanosecond
/// domain. O(1) record, O(buckets) merge, O(buckets) memory regardless of
/// sample count — every percentile surface in the repo (stage histograms,
/// the SLO tracker's sliding windows) is backed by this representation, so
/// million-op runs never retain raw samples.
class LatencyDigest {
 public:
  LatencyDigest();

  void add(Duration v);
  void merge(const LatencyDigest& other);
  void reset();

  std::uint64_t count() const { return count_; }
  double mean() const;
  Duration min() const { return count_ ? min_ : 0; }
  Duration max() const { return count_ ? max_ : 0; }

  /// q in [0,1]; returns an upper bound of the bucket containing the
  /// q-quantile, clamped into [min, max]. percentile(0.5) is the median;
  /// tail quantiles (0.99, 0.999) resolve to the same ~2.4% bucket width
  /// as any other quantile.
  Duration percentile(double q) const;

 private:
  static std::size_t bucketFor(Duration v);
  static Duration bucketUpper(std::size_t b);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0;
  Duration min_ = 0;
  Duration max_ = 0;
};

/// Log-bucketed latency histogram (nanosecond resolution, ~2.4% bucket
/// width). Suitable for microsecond..minute latencies. The histogram *is*
/// a LatencyDigest — same buckets, same percentile math — the name only
/// marks long-lived whole-run aggregates apart from windowed digests.
class Histogram : public LatencyDigest {};

/// A sampled time series: (time, value) points in append order.
/// Used for PDU power traces, CPU-usage traces, disk I/O traces.
class TimeSeries {
 public:
  struct Point {
    SimTime time;
    double value;
  };

  void add(SimTime t, double v) { points_.push_back({t, v}); }
  void reset() { points_.clear(); }

  const std::vector<Point>& points() const { return points_; }
  bool empty() const { return points_.empty(); }
  std::size_t size() const { return points_.size(); }

  double meanValue() const;
  double maxValue() const;
  double minValue() const;

  /// Mean of values with time in [from, to).
  double meanInWindow(SimTime from, SimTime to) const;

  /// Trapezoid-free integral treating samples as left-continuous steps:
  /// sum of value[i] * (t[i+1]-t[i]); the last sample extends to `end`.
  double stepIntegral(SimTime end) const;

  std::string toCsv(const std::string& header) const;

 private:
  std::vector<Point> points_;
};

/// Integrates a piecewise-constant value over simulated time.
/// Drives CPU-utilisation accounting and energy metering.
class TimeWeightedValue {
 public:
  /// Set the value as of time `t`. Times must be nondecreasing.
  void set(SimTime t, double value);

  /// Integral of the value from the first set() to time `t`
  /// (value is extended flat to `t`). Units: value * seconds.
  double integralTo(SimTime t) const;

  double current() const { return value_; }
  SimTime lastChange() const { return lastTime_; }

 private:
  double value_ = 0;
  double integral_ = 0;
  SimTime lastTime_ = 0;
  bool started_ = false;
  SimTime startTime_ = 0;

 public:
  SimTime startTime() const { return startTime_; }
};

/// Counts discrete completions and reports rates over [from, to] windows.
class OpCounter {
 public:
  void record(SimTime t) {
    ++total_;
    lastAt_ = t;
  }
  void add(SimTime t, std::uint64_t n) {
    total_ += n;
    lastAt_ = t;
  }

  std::uint64_t total() const { return total_; }
  SimTime lastAt() const { return lastAt_; }

  /// Snapshot-based window rate: callers remember a snapshot of total()
  /// at window start.
  static double rate(std::uint64_t startCount, std::uint64_t endCount,
                     SimTime from, SimTime to);

 private:
  std::uint64_t total_ = 0;
  SimTime lastAt_ = 0;
};

}  // namespace rc::sim
