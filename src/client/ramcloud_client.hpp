#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "sim/token_bucket.hpp"
#include "coordinator/tablet_map.hpp"
#include "net/rpc.hpp"
#include "node/node.hpp"
#include "obs/time_trace.hpp"
#include "server/common.hpp"
#include "sim/backoff.hpp"
#include "sim/simulation.hpp"

namespace rc::client {

struct ClientParams {
  sim::Duration opTimeout = server::timeouts::kClientOp;
  /// Hard-failure retry budget (timeouts, stale routing).
  int maxRetries = 5;
  /// Capped exponential backoff between hard-failure retries, with
  /// deterministic jitter so a dead server isn't hammered by synchronized
  /// client retries (shared policy, sim/backoff.hpp).
  sim::Backoff retryBackoff{sim::msec(1), sim::msec(100)};
  /// Backoff between kOverloaded bounces. Starts above retryBackoff and
  /// caps higher: an overloaded server is alive, so the goal is spacing,
  /// not failover. The server's retry-after hint acts as a floor.
  sim::Backoff overloadBackoff{sim::msec(2), sim::msec(200)};
  /// Retry budget (docs/OVERLOAD.md): every retry — hard failure or
  /// overload bounce — reserves a token from this bucket; an empty bucket
  /// delays the retry until a token accrues, so a cluster-wide incident
  /// caps retry traffic at retryBudgetPerSec per client instead of
  /// multiplying offered load. <= 0 disables (the anti-metastability
  /// regression fixture runs that way).
  double retryBudgetPerSec = 100.0;
  double retryBudgetBurst = 20.0;
  /// Wait between retries while the target tablet is being recovered
  /// (these waits do not consume the retry budget: the op blocks until the
  /// data is available again — paper Fig. 10's "client 1").
  sim::Duration recoveringBackoff = sim::msec(20);
  /// How long an op may block on recovery before giving up entirely.
  sim::Duration recoveringDeadline = sim::seconds(180);
  /// Exactly-once semantics (RIFL, docs/LINEARIZABILITY.md): lazily open a
  /// coordinator lease before the first mutating op and stamp every
  /// write/remove with (clientId, rpcSeq, firstUnacked) so masters can
  /// suppress duplicate retries. Off reverts to PR 3's at-least-once
  /// retries. Batched multiWrite stays untracked either way.
  bool exactlyOnce = true;
};

struct ClientStats {
  std::uint64_t opsIssued = 0;
  std::uint64_t opsSucceeded = 0;
  std::uint64_t opsFailed = 0;
  std::uint64_t rpcTimeouts = 0;
  std::uint64_t staleRoutes = 0;
  std::uint64_t mapRefreshes = 0;
  std::uint64_t recoveryWaits = 0;
  std::uint64_t leasesOpened = 0;
  std::uint64_t leaseRenewals = 0;
  std::uint64_t leaseExpiries = 0;  ///< kExpiredLease responses observed
  std::uint64_t txStarted = 0;      ///< txCommit calls
  std::uint64_t txCommitted = 0;    ///< definite commit reported (kOk)
  std::uint64_t txAborted = 0;      ///< definite abort reported (kTxConflict)
  std::uint64_t txUnknown = 0;      ///< outcome left to orphan resolution
  std::uint64_t overloadedBounces = 0;  ///< kOverloaded responses observed
  std::uint64_t overloadedGiveUps = 0;  ///< ops failed after bounce budget
  std::uint64_t retryBudgetWaits = 0;   ///< retries delayed by empty bucket
};

/// RAMCloud client library: tablet-map caching, request routing, retry and
/// recovery back-off.
class RamCloudClient {
 public:
  /// status + end-to-end latency (first issue to final completion,
  /// including every retry and recovery wait — the paper's Fig. 10 metric).
  using OpCallback = std::function<void(net::Status, sim::Duration)>;

  RamCloudClient(sim::Simulation& sim, net::RpcSystem& rpc,
                 node::NodeId self, node::NodeId coordinatorNode,
                 std::function<const coordinator::TabletMap*()> mapAccess,
                 ClientParams params);

  void read(std::uint64_t tableId, std::uint64_t keyId, OpCallback cb);
  void write(std::uint64_t tableId, std::uint64_t keyId,
             std::uint32_t valueBytes, OpCallback cb);
  void remove(std::uint64_t tableId, std::uint64_t keyId, OpCallback cb);

  /// Version-carrying variants. cb(status, version, latency): for reads the
  /// version of the returned object (0 if missing); for writes the version
  /// the write produced — or, on kVersionMismatch, the current version the
  /// conditional write lost to.
  using VersionCallback =
      std::function<void(net::Status, std::uint64_t, sim::Duration)>;
  void readV(std::uint64_t tableId, std::uint64_t keyId, VersionCallback cb);
  /// Conditional write: applies only if the object's current version equals
  /// `expectedVersion` (0 = unconditional). The version check runs on the
  /// master under the append lock, so an already-applied duplicate cannot
  /// silently apply twice — the retry is either suppressed by the
  /// UnackedRpcResults table or rejected with kVersionMismatch.
  void writeV(std::uint64_t tableId, std::uint64_t keyId,
              std::uint32_t valueBytes, std::uint64_t expectedVersion,
              VersionCallback cb);

  /// Table scan (paper SS X future work): fans one kScan RPC out per
  /// tablet and aggregates. cb(status, objectCount, totalBytes).
  using ScanCallback =
      std::function<void(net::Status, std::uint64_t, std::uint64_t)>;
  void scanTable(std::uint64_t tableId, ScanCallback cb);

  /// Batched operations (RAMCloud's multiRead/multiWrite): keys are
  /// grouped by owning master, one RPC per master, results aggregated.
  /// cb(status, keysServed, keysMissing). status is kOk when every group
  /// succeeded.
  using MultiOpCallback =
      std::function<void(net::Status, std::uint64_t, std::uint64_t)>;
  void multiRead(std::uint64_t tableId, std::vector<std::uint64_t> keys,
                 MultiOpCallback cb);
  void multiWrite(std::uint64_t tableId, std::vector<std::uint64_t> keys,
                  std::uint32_t valueBytes, MultiOpCallback cb);

  // ----- minitransactions (docs/TRANSACTIONS.md)
  //
  // Sinfonia-style client-driven two-phase commit over RIFL. Reads join an
  // optimistic read set; writes are buffered locally; txCommit runs the
  // prepare round (per-object version locks + durable kTxPrepare records on
  // the participants) and, if every vote is yes, the decision round. Any
  // vote-no or unknown vote aborts. Requires exactlyOnce (the locks are
  // reclaimed through the owning lease when this client dies).

  /// Open a transaction context; returns its globally-unique txId.
  std::uint64_t txBegin();
  /// Transactional read: a plain read whose observed version joins the
  /// read set; the prepare round re-validates it on the owning master.
  void txRead(std::uint64_t txId, std::uint64_t tableId, std::uint64_t keyId,
              VersionCallback cb);
  /// Buffer a write locally; nothing reaches a master until txCommit.
  void txWrite(std::uint64_t txId, std::uint64_t tableId, std::uint64_t keyId,
               std::uint32_t valueBytes);
  /// Run two-phase commit. cb status: kOk = definitely committed,
  /// kTxConflict = definitely aborted (version/lock conflict), anything
  /// else = outcome unknown to this client — crash recovery plus the
  /// orphan-resolution sweep drive it to one atomic outcome.
  void txCommit(std::uint64_t txId, OpCallback cb);

  const ClientStats& stats() const { return stats_; }
  node::NodeId nodeId() const { return self_; }

  /// Fault hook (FaultPlan client_stall): freeze the client — no new RPC
  /// issues and no lease renewals — until `d` from now. Used to drive a
  /// client past its lease expiry deterministically.
  void stallFor(sim::Duration d);

  /// Current lease (0 = none open). A stalled-out client drops to 0 when a
  /// renewal or a tracked op observes kExpiredLease, then reopens lazily.
  std::uint64_t clientId() const { return clientId_; }

  /// Client-side retry counters per opcode, mirroring the RPC system's
  /// net.rpc.timeouts.*: incremented each time an already-sent RPC is
  /// re-issued (timeout, stale route, recovering bounce, expired lease).
  std::uint64_t retriesForOpcode(net::Opcode op) const {
    return opRetries_[static_cast<std::size_t>(op)];
  }
  std::uint64_t totalRetries() const {
    std::uint64_t n = 0;
    for (const std::uint64_t v : opRetries_) n += v;
    return n;
  }

  /// kOverloaded bounces per opcode (mirrors retriesForOpcode; summed
  /// cluster-wide into net.rpc.overloaded.*).
  std::uint64_t overloadedForOpcode(net::Opcode op) const {
    return opOverloaded_[static_cast<std::size_t>(op)];
  }

  /// Attach the cluster's per-RPC time trace: every read/write/remove RPC
  /// attempt opens a span at issue and closes it at completion (including
  /// synthesised timeouts). nullptr disables tracing.
  void setTimeTrace(obs::TimeTrace* trace) { trace_ = trace; }

  /// Tenant/op-class tag stamped on every traced span and RPC this client
  /// issues (0 = untagged). The SLO tracker keys windows by tenant; flight
  /// recorder entries carry it too (docs/SLO.md).
  void setTenant(std::uint16_t tenant) { tenant_ = tenant; }
  std::uint16_t tenant() const { return tenant_; }

  /// Span detail of the most recently *completed* RPC attempt, captured at
  /// endSpan so workload drivers can hand the SLO tracker a full stage
  /// decomposition without a second lookup. Invalidated by timeouts
  /// (abandoned spans have no reply leg). Valid only inside the completion
  /// callback of the op that produced it — the next RPC overwrites it.
  struct LastOp {
    bool valid = false;
    std::uint64_t span = 0;
    int node = -1;  ///< serving master
    obs::TimeTrace::SpanDetail detail;
  };
  const LastOp& lastOp() const { return lastOp_; }

 private:
  struct OpState {
    net::Opcode op;
    std::uint64_t tableId;
    std::uint64_t keyId;
    std::uint32_t valueBytes;
    sim::SimTime startedAt;
    int retriesLeft;
    OpCallback cb;
    VersionCallback vcb;  ///< set instead of cb by the *V variants
    std::uint64_t expectedVersion = 0;  ///< conditional write (0 = blind)
    /// RIFL sequence number, assigned once at the first issue of a tracked
    /// op and reused verbatim by every retry — the master's duplicate key.
    std::uint64_t seq = 0;
    // Minitransaction fields (kTxPrepare / kTxDecision ops only).
    std::uint64_t txId = 0;
    bool txCommitDecision = false;  ///< kTxDecision: commit vs. abort
    std::shared_ptr<const std::vector<std::uint64_t>> txKeys;  ///< packed
    /// Prepare ops keep their seq in outstandingSeqs_ past completion: the
    /// firstUnacked watermark must not pass a prepare whose decision is
    /// still pending, or the master GCs the prepare record while the lock
    /// still needs it. txCommit erases them after the decision round.
    bool holdSeq = false;
  };

  bool tracked(const OpState& st) const {
    return params_.exactlyOnce &&
           (st.op == net::Opcode::kWrite || st.op == net::Opcode::kRemove ||
            st.op == net::Opcode::kTxDecision ||
            (st.op == net::Opcode::kTxPrepare && st.valueBytes > 0));
  }

  void issue(OpState st);
  void refreshMapThen(std::function<void()> then);
  void openLeaseThen(std::function<void()> then);
  void startRenewals();
  void noteRetry(net::Opcode op) {
    ++opRetries_[static_cast<std::size_t>(op)];
  }
  void finish(OpState& st, net::Status status, std::uint64_t version = 0);
  void issueMulti(net::Opcode op, std::uint64_t tableId,
                  std::vector<std::uint64_t> keys, std::uint32_t valueBytes,
                  MultiOpCallback cb, int retriesLeft);

  /// Routing decision against the *cached* map.
  enum class Route { kOk, kRecovering, kUnknown };
  Route routeFor(std::uint64_t tableId, std::uint64_t keyId,
                 node::NodeId* target) const;

  sim::Simulation& sim_;
  net::RpcSystem& rpc_;
  node::NodeId self_;
  node::NodeId coordinator_;
  std::function<const coordinator::TabletMap*()> mapAccess_;
  ClientParams params_;

  coordinator::TabletMap cachedMap_;
  bool haveMap_ = false;
  bool refreshing_ = false;
  std::vector<std::function<void()>> refreshWaiters_;

  // ----- exactly-once state (docs/LINEARIZABILITY.md)
  std::uint64_t clientId_ = 0;
  sim::Duration leaseTerm_ = 0;
  bool openingLease_ = false;
  std::vector<std::function<void()>> leaseWaiters_;
  /// Never reset, even across lease reopen: a (clientId, seq) pair must
  /// stay unique for the client's lifetime.
  std::uint64_t nextSeq_ = 1;
  /// Seqs issued but not yet terminally completed; min() is the
  /// firstUnacked watermark stamped on every tracked RPC.
  std::set<std::uint64_t> outstandingSeqs_;
  std::unique_ptr<sim::PeriodicTask> renewTask_;
  sim::SimTime stalledUntil_ = 0;

  // ----- minitransaction state (docs/TRANSACTIONS.md)
  struct TxItem {
    bool written = false;
    std::uint32_t valueBytes = 0;
    bool read = false;
    std::uint64_t readVersion = 0;
  };
  struct TxState {
    std::map<std::pair<std::uint64_t, std::uint64_t>, TxItem> items;
  };
  std::map<std::uint64_t, TxState> activeTxs_;
  std::uint64_t nextTxLocal_ = 1;
  std::array<std::uint64_t, net::kOpcodeCount> opRetries_{};
  std::array<std::uint64_t, net::kOpcodeCount> opOverloaded_{};
  sim::TokenBucket retryBudget_;

  ClientStats stats_;
  obs::TimeTrace* trace_ = nullptr;
  std::uint16_t tenant_ = 0;
  LastOp lastOp_;
};

}  // namespace rc::client
