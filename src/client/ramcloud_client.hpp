#pragma once

#include <cstdint>
#include <functional>

#include "coordinator/tablet_map.hpp"
#include "net/rpc.hpp"
#include "node/node.hpp"
#include "obs/time_trace.hpp"
#include "server/common.hpp"
#include "sim/simulation.hpp"

namespace rc::client {

struct ClientParams {
  sim::Duration opTimeout = server::timeouts::kClientOp;
  /// Hard-failure retry budget (timeouts, stale routing).
  int maxRetries = 5;
  /// Capped exponential backoff between hard-failure retries, with
  /// deterministic jitter so a dead server isn't hammered by synchronized
  /// client retries (see server::Backoff).
  server::Backoff retryBackoff{sim::msec(1), sim::msec(100)};
  /// Wait between retries while the target tablet is being recovered
  /// (these waits do not consume the retry budget: the op blocks until the
  /// data is available again — paper Fig. 10's "client 1").
  sim::Duration recoveringBackoff = sim::msec(20);
  /// How long an op may block on recovery before giving up entirely.
  sim::Duration recoveringDeadline = sim::seconds(180);
};

struct ClientStats {
  std::uint64_t opsIssued = 0;
  std::uint64_t opsSucceeded = 0;
  std::uint64_t opsFailed = 0;
  std::uint64_t rpcTimeouts = 0;
  std::uint64_t staleRoutes = 0;
  std::uint64_t mapRefreshes = 0;
  std::uint64_t recoveryWaits = 0;
};

/// RAMCloud client library: tablet-map caching, request routing, retry and
/// recovery back-off.
class RamCloudClient {
 public:
  /// status + end-to-end latency (first issue to final completion,
  /// including every retry and recovery wait — the paper's Fig. 10 metric).
  using OpCallback = std::function<void(net::Status, sim::Duration)>;

  RamCloudClient(sim::Simulation& sim, net::RpcSystem& rpc,
                 node::NodeId self, node::NodeId coordinatorNode,
                 std::function<const coordinator::TabletMap*()> mapAccess,
                 ClientParams params);

  void read(std::uint64_t tableId, std::uint64_t keyId, OpCallback cb);
  void write(std::uint64_t tableId, std::uint64_t keyId,
             std::uint32_t valueBytes, OpCallback cb);
  void remove(std::uint64_t tableId, std::uint64_t keyId, OpCallback cb);

  /// Table scan (paper SS X future work): fans one kScan RPC out per
  /// tablet and aggregates. cb(status, objectCount, totalBytes).
  using ScanCallback =
      std::function<void(net::Status, std::uint64_t, std::uint64_t)>;
  void scanTable(std::uint64_t tableId, ScanCallback cb);

  /// Batched operations (RAMCloud's multiRead/multiWrite): keys are
  /// grouped by owning master, one RPC per master, results aggregated.
  /// cb(status, keysServed, keysMissing). status is kOk when every group
  /// succeeded.
  using MultiOpCallback =
      std::function<void(net::Status, std::uint64_t, std::uint64_t)>;
  void multiRead(std::uint64_t tableId, std::vector<std::uint64_t> keys,
                 MultiOpCallback cb);
  void multiWrite(std::uint64_t tableId, std::vector<std::uint64_t> keys,
                  std::uint32_t valueBytes, MultiOpCallback cb);

  const ClientStats& stats() const { return stats_; }
  node::NodeId nodeId() const { return self_; }

  /// Attach the cluster's per-RPC time trace: every read/write/remove RPC
  /// attempt opens a span at issue and closes it at completion (including
  /// synthesised timeouts). nullptr disables tracing.
  void setTimeTrace(obs::TimeTrace* trace) { trace_ = trace; }

 private:
  struct OpState {
    net::Opcode op;
    std::uint64_t tableId;
    std::uint64_t keyId;
    std::uint32_t valueBytes;
    sim::SimTime startedAt;
    int retriesLeft;
    OpCallback cb;
  };

  void issue(OpState st);
  void refreshMapThen(std::function<void()> then);
  void finish(OpState& st, net::Status status);
  void issueMulti(net::Opcode op, std::uint64_t tableId,
                  std::vector<std::uint64_t> keys, std::uint32_t valueBytes,
                  MultiOpCallback cb, int retriesLeft);

  /// Routing decision against the *cached* map.
  enum class Route { kOk, kRecovering, kUnknown };
  Route routeFor(std::uint64_t tableId, std::uint64_t keyId,
                 node::NodeId* target) const;

  sim::Simulation& sim_;
  net::RpcSystem& rpc_;
  node::NodeId self_;
  node::NodeId coordinator_;
  std::function<const coordinator::TabletMap*()> mapAccess_;
  ClientParams params_;

  coordinator::TabletMap cachedMap_;
  bool haveMap_ = false;
  bool refreshing_ = false;
  std::vector<std::function<void()>> refreshWaiters_;

  ClientStats stats_;
  obs::TimeTrace* trace_ = nullptr;
};

}  // namespace rc::client
