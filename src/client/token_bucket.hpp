#pragma once

#include <algorithm>

#include "sim/time.hpp"

namespace rc::client {

/// Client-side request throttle (the paper's §IX "request throttling"
/// mitigation, Fig. 13 — e.g. Facebook's memcached back-off clients).
class TokenBucket {
 public:
  /// ratePerSec <= 0 disables throttling. burst is the bucket depth.
  TokenBucket(double ratePerSec, double burst = 1.0)
      : rate_(ratePerSec), burst_(std::max(burst, 1.0)), tokens_(burst_) {}

  bool enabled() const { return rate_ > 0; }

  /// Consume one token; returns how long the caller must wait before the
  /// operation may be issued (0 if a token was available).
  sim::Duration reserve(sim::SimTime now) {
    if (!enabled()) return 0;
    refill(now);
    if (tokens_ >= 1.0) {
      tokens_ -= 1.0;
      return 0;
    }
    const double deficit = 1.0 - tokens_;
    tokens_ -= 1.0;  // token is committed; balance goes negative
    return sim::secondsF(deficit / rate_);
  }

  double rate() const { return rate_; }

 private:
  void refill(sim::SimTime now) {
    if (now <= last_) return;
    tokens_ = std::min(burst_,
                       tokens_ + rate_ * sim::toSeconds(now - last_));
    last_ = now;
  }

  double rate_;
  double burst_;
  double tokens_;
  sim::SimTime last_ = 0;
};

}  // namespace rc::client
