#include "client/ramcloud_client.hpp"

#include <utility>

namespace rc::client {

RamCloudClient::RamCloudClient(
    sim::Simulation& sim, net::RpcSystem& rpc, node::NodeId self,
    node::NodeId coordinatorNode,
    std::function<const coordinator::TabletMap*()> mapAccess,
    ClientParams params)
    : sim_(sim),
      rpc_(rpc),
      self_(self),
      coordinator_(coordinatorNode),
      mapAccess_(std::move(mapAccess)),
      params_(params),
      retryBudget_(params.retryBudgetPerSec, params.retryBudgetBurst) {}

void RamCloudClient::read(std::uint64_t tableId, std::uint64_t keyId,
                          OpCallback cb) {
  ++stats_.opsIssued;
  issue(OpState{net::Opcode::kRead, tableId, keyId, 0, sim_.now(),
                params_.maxRetries, std::move(cb)});
}

void RamCloudClient::write(std::uint64_t tableId, std::uint64_t keyId,
                           std::uint32_t valueBytes, OpCallback cb) {
  ++stats_.opsIssued;
  issue(OpState{net::Opcode::kWrite, tableId, keyId, valueBytes, sim_.now(),
                params_.maxRetries, std::move(cb)});
}

void RamCloudClient::remove(std::uint64_t tableId, std::uint64_t keyId,
                            OpCallback cb) {
  ++stats_.opsIssued;
  issue(OpState{net::Opcode::kRemove, tableId, keyId, 0, sim_.now(),
                params_.maxRetries, std::move(cb)});
}

void RamCloudClient::readV(std::uint64_t tableId, std::uint64_t keyId,
                           VersionCallback cb) {
  ++stats_.opsIssued;
  OpState st{net::Opcode::kRead, tableId, keyId, 0, sim_.now(),
             params_.maxRetries, nullptr};
  st.vcb = std::move(cb);
  issue(std::move(st));
}

void RamCloudClient::writeV(std::uint64_t tableId, std::uint64_t keyId,
                            std::uint32_t valueBytes,
                            std::uint64_t expectedVersion,
                            VersionCallback cb) {
  ++stats_.opsIssued;
  OpState st{net::Opcode::kWrite, tableId, keyId, valueBytes, sim_.now(),
             params_.maxRetries, nullptr};
  st.vcb = std::move(cb);
  st.expectedVersion = expectedVersion;
  issue(std::move(st));
}

std::uint64_t RamCloudClient::txBegin() {
  // (node << 40) | counter: globally unique without coordination, and the
  // node id is recoverable from the txId for diagnostics.
  const std::uint64_t txId =
      (static_cast<std::uint64_t>(self_) << 40) | nextTxLocal_++;
  activeTxs_[txId];
  return txId;
}

void RamCloudClient::txRead(std::uint64_t txId, std::uint64_t tableId,
                            std::uint64_t keyId, VersionCallback cb) {
  readV(tableId, keyId,
        [this, txId, tableId, keyId, cb = std::move(cb)](
            net::Status s, std::uint64_t version, sim::Duration lat) {
          auto it = activeTxs_.find(txId);
          if (it != activeTxs_.end() && s == net::Status::kOk) {
            TxItem& item = it->second.items[{tableId, keyId}];
            item.read = true;
            item.readVersion = version;  // 0 = key absent
          }
          cb(s, version, lat);
        });
}

void RamCloudClient::txWrite(std::uint64_t txId, std::uint64_t tableId,
                             std::uint64_t keyId, std::uint32_t valueBytes) {
  auto it = activeTxs_.find(txId);
  if (it == activeTxs_.end()) return;
  TxItem& item = it->second.items[{tableId, keyId}];
  item.written = true;
  // A zero-byte write would be indistinguishable on the wire from a
  // validation-only item; clamp so it still takes a lock.
  item.valueBytes = valueBytes > 0 ? valueBytes : 1;
}

void RamCloudClient::txCommit(std::uint64_t txId, OpCallback cb) {
  auto it = activeTxs_.find(txId);
  if (it == activeTxs_.end()) {
    cb(net::Status::kError, 0);
    return;
  }
  TxState tx = std::move(it->second);
  activeTxs_.erase(it);
  ++stats_.txStarted;
  if (tx.items.empty()) {
    ++stats_.txCommitted;
    cb(net::Status::kOk, 0);
    return;
  }

  struct CommitCtx {
    std::uint64_t txId = 0;
    sim::SimTime startedAt = 0;
    OpCallback cb;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> writeKeys;
    std::shared_ptr<const std::vector<std::uint64_t>> participants;
    int pendingVotes = 0;
    bool anyNo = false;       ///< explicit, durable vote-no
    bool anyUnknown = false;  ///< vote never arrived (timeout / dead server)
    std::vector<std::uint64_t> prepareSeqs;
    int pendingDecisions = 0;
    int decisionsAcked = 0;
    int decisionsApplied = 0;  ///< acks that actually released a lock
    bool commit = false;
  };
  auto cx = std::make_shared<CommitCtx>();
  cx->txId = txId;
  cx->startedAt = sim_.now();
  cx->cb = std::move(cb);
  {
    auto packed = std::make_shared<std::vector<std::uint64_t>>();
    for (const auto& [key, item] : tx.items) {
      if (!item.written) continue;
      cx->writeKeys.push_back(key);
      packed->push_back(key.first);
      packed->push_back(key.second);
    }
    cx->participants = std::move(packed);
  }

  auto finalize = [this, cx]() {
    for (const std::uint64_t seq : cx->prepareSeqs) {
      outstandingSeqs_.erase(seq);
    }
    net::Status result;
    if (cx->commit) {
      // All participants hold a durable yes: even if a decision delivery
      // failed, cooperative termination can only conclude commit.
      result = cx->pendingDecisions == 0 &&
                       cx->decisionsAcked ==
                           static_cast<int>(cx->writeKeys.size())
                   ? net::Status::kOk
                   : net::Status::kTimeout;
    } else if (cx->anyNo || cx->decisionsApplied > 0) {
      // A durable vote-no (or an abort decision that released a lock) pins
      // the outcome: any later vote query answers "aborted". A mere no-op
      // ack (no lock found) pins nothing — resolution may have decided.
      result = net::Status::kTxConflict;
    } else {
      // Abort chosen on an unknown vote, and no abort landed on a lock: if
      // every prepare actually succeeded, resolution commits it instead.
      result = net::Status::kTimeout;
    }
    if (result == net::Status::kOk) {
      ++stats_.txCommitted;
    } else if (result == net::Status::kTxConflict) {
      ++stats_.txAborted;
    } else {
      ++stats_.txUnknown;
    }
    cx->cb(result, sim_.now() - cx->startedAt);
  };

  auto decisionRound = [this, cx, finalize]() {
    cx->commit = !cx->anyNo && !cx->anyUnknown;
    if (cx->writeKeys.empty()) {
      // Read-only transaction: the validation round IS the commit — if
      // every version check passed, the read set was consistent (OCC).
      finalize();
      return;
    }
    cx->pendingDecisions = static_cast<int>(cx->writeKeys.size());
    for (const auto& [tableId, keyId] : cx->writeKeys) {
      OpState st{net::Opcode::kTxDecision, tableId, keyId, 0, sim_.now(),
                 params_.maxRetries, nullptr};
      st.txId = cx->txId;
      st.txCommitDecision = cx->commit;
      st.vcb = [cx, finalize](net::Status s, std::uint64_t applied,
                              sim::Duration) {
        if (s == net::Status::kOk) {
          ++cx->decisionsAcked;
          if (applied != 0) ++cx->decisionsApplied;
        }
        if (--cx->pendingDecisions == 0) finalize();
      };
      ++stats_.opsIssued;
      issue(std::move(st));
    }
  };

  cx->pendingVotes = static_cast<int>(tx.items.size());
  for (const auto& [key, item] : tx.items) {
    OpState st{net::Opcode::kTxPrepare, key.first, key.second,
               item.written ? item.valueBytes : 0, sim_.now(),
               params_.maxRetries, nullptr};
    st.txId = txId;
    st.expectedVersion = item.read ? item.readVersion : 0;
    st.txKeys = cx->participants;
    if (item.written) {
      // Tracked: pre-assign the seq so it can be held past the vote (the
      // firstUnacked watermark must not release the prepare record before
      // its decision lands).
      st.seq = nextSeq_++;
      st.holdSeq = true;
      outstandingSeqs_.insert(st.seq);
      cx->prepareSeqs.push_back(st.seq);
    }
    st.vcb = [cx, decisionRound](net::Status s, std::uint64_t,
                                 sim::Duration) {
      if (s == net::Status::kVersionMismatch ||
          s == net::Status::kTxConflict) {
        cx->anyNo = true;
      } else if (s != net::Status::kOk) {
        cx->anyUnknown = true;
      }
      if (--cx->pendingVotes == 0) decisionRound();
    };
    ++stats_.opsIssued;
    issue(std::move(st));
  }
}

void RamCloudClient::stallFor(sim::Duration d) {
  const sim::SimTime until = sim_.now() + d;
  if (until > stalledUntil_) stalledUntil_ = until;
}

void RamCloudClient::scanTable(std::uint64_t tableId, ScanCallback cb) {
  refreshMapThen([this, tableId, cb = std::move(cb)]() mutable {
    struct Agg {
      std::uint64_t count = 0;
      std::uint64_t bytes = 0;
      int pending = 0;
      bool anyError = false;
      ScanCallback cb;
    };
    auto agg = std::make_shared<Agg>();
    agg->cb = std::move(cb);

    std::vector<coordinator::TabletMap::Entry> tablets;
    for (const auto& e : cachedMap_.entries()) {
      if (e.tablet.tableId == tableId) tablets.push_back(e);
    }
    if (tablets.empty()) {
      agg->cb(net::Status::kUnknownTablet, 0, 0);
      return;
    }
    agg->pending = static_cast<int>(tablets.size());
    for (const auto& e : tablets) {
      net::RpcRequest req;
      req.op = net::Opcode::kScan;
      req.a = tableId;
      req.b = e.tablet.startHash;
      req.c = e.tablet.endHash;
      rpc_.call(self_, e.tablet.owner, net::kMasterPort, req,
                sim::seconds(30), [agg](const net::RpcResponse& resp) {
                  if (resp.status == net::Status::kOk) {
                    agg->count += resp.a;
                    agg->bytes += resp.payloadBytes;
                  } else {
                    agg->anyError = true;
                  }
                  if (--agg->pending == 0) {
                    agg->cb(agg->anyError ? net::Status::kError
                                          : net::Status::kOk,
                            agg->count, agg->bytes);
                  }
                });
    }
  });
}

void RamCloudClient::multiRead(std::uint64_t tableId,
                               std::vector<std::uint64_t> keys,
                               MultiOpCallback cb) {
  issueMulti(net::Opcode::kMultiRead, tableId, std::move(keys), 0,
             std::move(cb), params_.maxRetries);
}

void RamCloudClient::multiWrite(std::uint64_t tableId,
                                std::vector<std::uint64_t> keys,
                                std::uint32_t valueBytes,
                                MultiOpCallback cb) {
  issueMulti(net::Opcode::kMultiWrite, tableId, std::move(keys), valueBytes,
             std::move(cb), params_.maxRetries);
}

void RamCloudClient::issueMulti(net::Opcode op, std::uint64_t tableId,
                                std::vector<std::uint64_t> keys,
                                std::uint32_t valueBytes, MultiOpCallback cb,
                                int retriesLeft) {
  refreshMapThen([this, op, tableId, keys = std::move(keys), valueBytes,
                  cb = std::move(cb), retriesLeft]() mutable {
    // Group keys by owning master (per the cached map).
    std::unordered_map<node::NodeId, std::vector<std::uint64_t>> groups;
    bool anyUnknown = false;
    for (const std::uint64_t k : keys) {
      node::NodeId target = node::kInvalidNode;
      if (routeFor(tableId, k, &target) != Route::kOk) {
        anyUnknown = true;
        continue;
      }
      auto& group = groups[target];
      // Upper-bound reservation: a batch usually routes to few masters,
      // and the per-group growth reallocations dominated this loop.
      if (group.empty()) group.reserve(keys.size());
      group.push_back(k);
    }
    if (groups.empty() || anyUnknown) {
      if (retriesLeft > 0) {
        // Routing incomplete (recovering/unknown): back off and retry the
        // whole batch.
        sim_.schedule(params_.recoveringBackoff,
                      [this, op, tableId, keys = std::move(keys), valueBytes,
                       cb = std::move(cb), retriesLeft]() mutable {
                        issueMulti(op, tableId, std::move(keys), valueBytes,
                                   std::move(cb), retriesLeft - 1);
                      });
      } else {
        cb(net::Status::kError, 0, 0);
      }
      return;
    }

    struct Agg {
      std::uint64_t served = 0;
      std::uint64_t missing = 0;
      int pending = 0;
      bool anyError = false;
      MultiOpCallback cb;
    };
    auto agg = std::make_shared<Agg>();
    agg->cb = std::move(cb);
    agg->pending = static_cast<int>(groups.size());

    constexpr std::uint64_t kPerKeyWireBytes = 30;
    for (auto& [target, groupKeys] : groups) {
      net::RpcRequest req;
      req.op = op;
      req.a = tableId;
      req.b = valueBytes;
      req.c = groupKeys.size();
      req.payloadBytes =
          groupKeys.size() * kPerKeyWireBytes +
          (op == net::Opcode::kMultiWrite
               ? groupKeys.size() * static_cast<std::uint64_t>(valueBytes)
               : 0);
      req.keys = std::make_shared<const std::vector<std::uint64_t>>(
          std::move(groupKeys));
      ++stats_.opsIssued;
      rpc_.call(self_, target, net::kMasterPort, req, params_.opTimeout,
                [this, agg, op](const net::RpcResponse& resp) {
                  if (resp.status == net::Status::kOk) {
                    ++stats_.opsSucceeded;
                    agg->served += resp.a;
                    agg->missing += resp.b;
                  } else {
                    // Batches are not re-split on a shed group; the bounce
                    // is still counted so overload shows up in the stats.
                    if (resp.status == net::Status::kOverloaded) {
                      ++stats_.overloadedBounces;
                      ++opOverloaded_[static_cast<std::size_t>(op)];
                    }
                    ++stats_.opsFailed;
                    agg->anyError = true;
                  }
                  if (--agg->pending == 0) {
                    agg->cb(agg->anyError ? net::Status::kError
                                          : net::Status::kOk,
                            agg->served, agg->missing);
                  }
                });
    }
  });
}

void RamCloudClient::finish(OpState& st, net::Status status,
                            std::uint64_t version) {
  if (status == net::Status::kOk) {
    ++stats_.opsSucceeded;
  } else {
    ++stats_.opsFailed;
  }
  // Terminal completion acknowledges the seq: firstUnacked advances past it
  // and the masters may garbage-collect its completion record. Prepare ops
  // hold theirs until txCommit's decision round finishes (holdSeq).
  if (st.seq != 0 && !st.holdSeq) outstandingSeqs_.erase(st.seq);
  if (st.vcb) {
    st.vcb(status, version, sim_.now() - st.startedAt);
  } else {
    st.cb(status, sim_.now() - st.startedAt);
  }
}

void RamCloudClient::openLeaseThen(std::function<void()> then) {
  leaseWaiters_.push_back(std::move(then));
  if (openingLease_) return;
  openingLease_ = true;
  net::RpcRequest req;
  req.op = net::Opcode::kOpenLease;
  rpc_.call(self_, coordinator_, net::kCoordinatorPort, req,
            server::timeouts::kControl, [this](const net::RpcResponse& resp) {
              openingLease_ = false;
              if (resp.status == net::Status::kOk) {
                clientId_ = resp.a;
                leaseTerm_ = static_cast<sim::Duration>(resp.b);
                ++stats_.leasesOpened;
                startRenewals();
                auto waiters = std::move(leaseWaiters_);
                leaseWaiters_.clear();
                for (auto& w : waiters) w();
              } else {
                // Coordinator unreachable: retry; queued ops stay queued.
                sim_.schedule(params_.recoveringBackoff, [this] {
                  if (clientId_ == 0 && !leaseWaiters_.empty()) {
                    openLeaseThen([] {});
                  }
                });
              }
            });
}

void RamCloudClient::startRenewals() {
  // Renew at term/4: three consecutive lost renewals are needed before the
  // lease can lapse, so a transient loss event cannot expire a live client.
  renewTask_ = std::make_unique<sim::PeriodicTask>(
      sim_, leaseTerm_ / 4, [this](sim::SimTime) {
        if (clientId_ == 0) return;
        if (sim_.now() < stalledUntil_) return;  // stalled: cannot renew
        net::RpcRequest req;
        req.op = net::Opcode::kRenewLease;
        req.a = clientId_;
        rpc_.call(self_, coordinator_, net::kCoordinatorPort, req,
                  server::timeouts::kControl,
                  [this, cid = clientId_](const net::RpcResponse& resp) {
                    if (resp.status == net::Status::kOk) {
                      ++stats_.leaseRenewals;
                    } else if (resp.status == net::Status::kExpiredLease &&
                               clientId_ == cid) {
                      ++stats_.leaseExpiries;
                      clientId_ = 0;  // reopen lazily on the next tracked op
                    }
                  });
      });
}

RamCloudClient::Route RamCloudClient::routeFor(std::uint64_t tableId,
                                               std::uint64_t keyId,
                                               node::NodeId* target) const {
  if (!haveMap_) return Route::kUnknown;
  const std::uint64_t h = hash::keyHash(hash::Key{tableId, keyId});
  const auto* e = cachedMap_.lookup(tableId, h);
  if (e == nullptr) return Route::kUnknown;
  if (e->state == coordinator::TabletMap::TabletState::kRecovering) {
    return Route::kRecovering;
  }
  *target = e->tablet.owner;
  return Route::kOk;
}

void RamCloudClient::refreshMapThen(std::function<void()> then) {
  refreshWaiters_.push_back(std::move(then));
  if (refreshing_) return;
  refreshing_ = true;
  ++stats_.mapRefreshes;
  net::RpcRequest req;
  req.op = net::Opcode::kGetTabletMap;
  rpc_.call(self_, coordinator_, net::kCoordinatorPort, req,
            server::timeouts::kControl, [this](const net::RpcResponse& resp) {
              if (resp.status == net::Status::kOk && mapAccess_) {
                if (const auto* m = mapAccess_()) {
                  cachedMap_ = *m;
                  haveMap_ = true;
                }
              }
              refreshing_ = false;
              auto waiters = std::move(refreshWaiters_);
              refreshWaiters_.clear();
              for (auto& w : waiters) w();
            });
}

void RamCloudClient::issue(OpState st) {
  // Fault model (client_stall): the client process is frozen — nothing
  // issues until the stall lifts. Renewals skip too, so a long stall lets
  // the lease expire and exercises the reclamation path.
  if (sim_.now() < stalledUntil_) {
    const sim::Duration wait = stalledUntil_ - sim_.now();
    sim_.schedule(wait,
                  [this, st = std::move(st)]() mutable { issue(std::move(st)); });
    return;
  }
  // Tracked mutating ops need a lease before the first attempt (and a new
  // one after an expiry); ops queue behind the open.
  if (tracked(st) && clientId_ == 0) {
    openLeaseThen(
        [this, st = std::move(st)]() mutable { issue(std::move(st)); });
    return;
  }

  node::NodeId target = node::kInvalidNode;
  const Route route = routeFor(st.tableId, st.keyId, &target);

  if (route == Route::kUnknown) {
    if (st.retriesLeft-- <= 0) {
      finish(st, net::Status::kError);
      return;
    }
    refreshMapThen([this, st = std::move(st)]() mutable { issue(std::move(st)); });
    return;
  }

  if (route == Route::kRecovering) {
    ++stats_.recoveryWaits;
    if (sim_.now() - st.startedAt > params_.recoveringDeadline) {
      finish(st, net::Status::kTimeout);
      return;
    }
    sim_.schedule(params_.recoveringBackoff, [this, st = std::move(st)]() mutable {
      refreshMapThen(
          [this, st = std::move(st)]() mutable { issue(std::move(st)); });
    });
    return;
  }

  net::RpcRequest req;
  req.op = st.op;
  req.a = st.tableId;
  req.b = st.keyId;
  if (st.op == net::Opcode::kWrite) {
    req.payloadBytes = st.valueBytes;
    req.c = st.expectedVersion;
  } else if (st.op == net::Opcode::kTxPrepare) {
    // payloadBytes == 0 marks a validation-only item (no lock, no record).
    req.payloadBytes = st.valueBytes;
    req.c = st.expectedVersion;
    req.d = st.txId;
    req.keys = st.txKeys;
  } else if (st.op == net::Opcode::kTxDecision) {
    req.c = st.txCommitDecision ? 1 : 0;
    req.d = st.txId;
  }
  if (tracked(st)) {
    if (st.seq == 0) {
      st.seq = nextSeq_++;
      outstandingSeqs_.insert(st.seq);
    }
    req.clientId = clientId_;
    req.rpcSeq = st.seq;  // retries reuse the seq: the duplicate key
    req.firstUnacked = outstandingSeqs_.empty() ? nextSeq_
                                                : *outstandingSeqs_.begin();
  }
  // One span per RPC *attempt*: retries and recovery waits open fresh
  // spans, so stage histograms describe individual RPCs, not op lifetimes.
  const std::uint64_t span = trace_ != nullptr ? trace_->beginSpan(tenant_) : 0;
  req.traceSpan = span;
  req.tenant = tenant_;

  rpc_.call(self_, target, net::kMasterPort, req, params_.opTimeout,
            [this, span, target,
             st = std::move(st)](const net::RpcResponse& resp) mutable {
    lastOp_.valid = false;
    if (trace_ != nullptr && span != 0) {
      if (resp.status == net::Status::kTimeout) {
        // The server died (or the reply was lost): the RPC never finished,
        // so drop the span rather than charging a timeout-length "reply".
        trace_->abandonSpan(span);
      } else {
        trace_->stamp(span, obs::TimeTrace::Stage::kNetworkReply, -1,
                      static_cast<std::int32_t>(self_));
        trace_->endSpan(span, &lastOp_.detail);
        lastOp_.valid = true;
        lastOp_.span = span;
        lastOp_.node = static_cast<int>(target);
      }
    }
    switch (resp.status) {
      case net::Status::kOk:
        // Decision acks report "applied to a held lock" in a, not a
        // version — txCommit needs it to classify the outcome.
        finish(st, net::Status::kOk,
               st.op == net::Opcode::kTxDecision ? resp.a : resp.b);
        return;
      case net::Status::kVersionMismatch:
        // Conditional write lost the race; the reply carries the current
        // version. Terminal — the caller decides whether to re-read.
        finish(st, net::Status::kVersionMismatch, resp.b);
        return;
      case net::Status::kUnknownTablet:
        ++stats_.staleRoutes;
        break;
      case net::Status::kTimeout:
        ++stats_.rpcTimeouts;
        break;
      case net::Status::kExpiredLease:
        // The master no longer tracks us: reopen a lease (lazily, on the
        // retry) and try again. The seq is reused under the new clientId.
        ++stats_.leaseExpiries;
        clientId_ = 0;
        break;
      case net::Status::kOverloaded: {
        // Shed by the server's admission control. The server is alive —
        // no failover, no map refresh — so just space the reissue: jittered
        // exponential backoff floored at the server's retry-after hint
        // (resp.a, ns), plus whatever the retry budget makes us wait. The
        // budget is what stops a cluster-wide incident from turning bounces
        // into an amplifying retry storm (docs/OVERLOAD.md).
        ++stats_.overloadedBounces;
        ++opOverloaded_[static_cast<std::size_t>(st.op)];
        if (st.retriesLeft-- <= 0) {
          ++stats_.overloadedGiveUps;
          finish(st, net::Status::kOverloaded);
          return;
        }
        noteRetry(st.op);
        const int attempt = params_.maxRetries - st.retriesLeft - 1;
        const std::uint64_t salt = (static_cast<std::uint64_t>(self_) << 48) ^
                                   (st.tableId << 32) ^ (st.keyId << 8) ^
                                   static_cast<std::uint64_t>(st.startedAt) ^
                                   0x0ec1ULL;
        sim::Duration wait =
            std::max(params_.overloadBackoff.delay(attempt, salt),
                     static_cast<sim::Duration>(resp.a));
        const sim::Duration budgetWait = retryBudget_.reserve(sim_.now());
        if (budgetWait > 0) ++stats_.retryBudgetWaits;
        sim_.schedule(wait + budgetWait,
                      [this, st = std::move(st)]() mutable {
          issue(std::move(st));
        });
        return;
      }
      case net::Status::kRecovering: {
        // Back off and re-route (no budget consumed: the data will come
        // back once recovery finishes).
        ++stats_.recoveryWaits;
        if (sim_.now() - st.startedAt > params_.recoveringDeadline) {
          finish(st, net::Status::kTimeout);
          return;
        }
        noteRetry(st.op);
        sim_.schedule(params_.recoveringBackoff,
                      [this, st = std::move(st)]() mutable {
          refreshMapThen(
              [this, st = std::move(st)]() mutable { issue(std::move(st)); });
        });
        return;
      }
      default:
        finish(st, resp.status);
        return;
    }
    if (st.retriesLeft-- <= 0) {
      finish(st, net::Status::kTimeout);
      return;
    }
    noteRetry(st.op);
    // Hard failure (timeout, stale routing or expired lease): back off with
    // deterministic jitter before re-resolving the route. These retries
    // draw on the same retry budget as overload bounces — a timeout storm
    // against a struggling server is the classic metastability trigger.
    const int attempt = params_.maxRetries - st.retriesLeft - 1;
    const std::uint64_t salt = (static_cast<std::uint64_t>(self_) << 48) ^
                               (st.tableId << 32) ^ (st.keyId << 8) ^
                               static_cast<std::uint64_t>(st.startedAt);
    const sim::Duration budgetWait = retryBudget_.reserve(sim_.now());
    if (budgetWait > 0) ++stats_.retryBudgetWaits;
    sim_.schedule(params_.retryBackoff.delay(attempt, salt) + budgetWait,
                  [this, st = std::move(st)]() mutable {
      refreshMapThen(
          [this, st = std::move(st)]() mutable { issue(std::move(st)); });
    });
  });
}

}  // namespace rc::client
