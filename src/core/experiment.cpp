#include "core/experiment.hpp"

#include <algorithm>
#include <vector>

namespace rc::core {

YcsbExperimentResult runYcsbExperiment(const YcsbExperimentConfig& cfg) {
  ClusterParams cp;
  cp.servers = cfg.servers;
  cp.clients = cfg.clients;
  cp.seed = cfg.seed;
  cp.replicationFactor = cfg.replicationFactor;

  Cluster cluster(cp);
  if (!cfg.tenant.empty()) {
    cluster.sloTracker().declareClass(cfg.tenant + "/read", cfg.readSlo);
    cluster.sloTracker().declareClass(cfg.tenant + "/update", cfg.updateSlo);
  }
  if (cfg.clusterHook) cfg.clusterHook(cluster);
  const std::uint64_t table = cluster.createTable("usertable");
  cluster.bulkLoad(table, cfg.workload.recordCount, cfg.workload.valueBytes);
  cluster.startPduSampling();
  if (!cfg.metricsDir.empty()) cluster.startStatsSampling();

  ycsb::YcsbClientParams ycp;
  ycp.opsTarget = 0;  // run until stopped; we measure a window
  ycp.clientOverheadPerOp = cfg.clientOverheadPerOp;
  ycp.throttleOpsPerSec = cfg.throttleOpsPerSec;
  ycp.tenant = cfg.tenant;
  if (cfg.transactional) {
    ycp.transactionalRmw = true;
    ycp.transferProportion = cfg.transferProportion;
    ycp.transferAccounts = cfg.transferAccounts;
    // Account pool above the zipfian/insert-probe range.
    ycp.transferKeyBase = cfg.workload.recordCount * 4;
  }
  cluster.configureYcsb(table, cfg.workload, ycp, cfg.perClientParams);
  cluster.startYcsb();

  const sim::Duration warmup = static_cast<sim::Duration>(
      static_cast<double>(cfg.warmup) * cfg.timeScale);
  const sim::Duration measure = std::max<sim::Duration>(
      sim::msec(500), static_cast<sim::Duration>(
                          static_cast<double>(cfg.measure) * cfg.timeScale));

  cluster.sim().runFor(warmup);

  // Window-start snapshots (CPU integrals + meter totals per server).
  const sim::SimTime t0 = cluster.sim().now();
  const std::uint64_t ops0 = cluster.totalOpsCompleted();
  std::vector<node::Node::PowerSnapshot> snaps;
  snaps.reserve(static_cast<std::size_t>(cluster.serverCount()));
  for (int i = 0; i < cluster.serverCount(); ++i) {
    snaps.push_back(cluster.server(i).node->snapshotPower());
  }

  cluster.sim().runFor(measure);

  const sim::SimTime t1 = cluster.sim().now();
  const std::uint64_t ops1 = cluster.totalOpsCompleted();
  cluster.stopYcsb();

  YcsbExperimentResult r;
  r.measuredSeconds = sim::toSeconds(t1 - t0);
  r.opsMeasured = ops1 - ops0;
  // Guard the degenerate zero-length window (timeScale ~ 0 in quick runs)
  // instead of propagating inf/nan into every derived metric.
  r.throughputOpsPerSec =
      r.measuredSeconds > 0
          ? static_cast<double>(r.opsMeasured) / r.measuredSeconds
          : 0;

  // Window power from the per-resource model (statics + CPU slope + event
  // dynamics), so NIC/DRAM/disk activity shows up in the watts — not just
  // the utilisation-curve estimate the paper's PDUs would have folded in.
  double cpuSum = 0;
  double cpuMin = 1.0;
  double cpuMax = 0.0;
  for (int i = 0; i < cluster.serverCount(); ++i) {
    const node::Node& node = *cluster.server(i).node;
    const auto& snap = snaps[static_cast<std::size_t>(i)];
    const double u = node.meanUtilisationSince(snap.cpu, t1);
    cpuSum += u;
    cpuMin = std::min(cpuMin, u);
    cpuMax = std::max(cpuMax, u);
    const auto by = node.componentEnergySince(snap, t1);
    for (std::size_t c = 0; c < power::kComponentCount; ++c) {
      r.componentEnergyJ[c] += by[c];
      r.clusterEnergyJ += by[c];
    }
  }
  const double n = static_cast<double>(cluster.serverCount());
  r.meanCpuPct = 100.0 * cpuSum / n;
  r.minCpuPct = 100.0 * cpuMin;
  r.maxCpuPct = 100.0 * cpuMax;
  r.clusterPowerW =
      r.measuredSeconds > 0 ? r.clusterEnergyJ / r.measuredSeconds : 0;
  r.meanPowerPerServerW = r.clusterPowerW / n;
  r.joulesPerOp = r.opsMeasured > 0
                      ? r.clusterEnergyJ / static_cast<double>(r.opsMeasured)
                      : 0;
  r.opsPerJoule =
      power::efficiency::opsPerJoule(r.throughputOpsPerSec, r.clusterPowerW);
  r.opsPerJoulePerNode = power::efficiency::opsPerJoulePerNode(
      r.throughputOpsPerSec, r.meanPowerPerServerW);

  // Latency stats aggregated across clients (whole run; steady state).
  sim::Histogram reads;
  sim::Histogram updates;
  for (int i = 0; i < cluster.clientCount(); ++i) {
    const auto* y = cluster.clientHost(i).ycsb.get();
    if (y == nullptr) continue;
    reads.merge(y->stats().readLatency);
    updates.merge(y->stats().updateLatency);
    r.txTransfers += y->stats().transfers;
    r.txClientAborted += y->stats().txAborted;
    r.txClientUnknown += y->stats().txUnknown;
  }
  r.readMeanLatencyUs = reads.mean() / 1e3;
  r.updateMeanLatencyUs = updates.mean() / 1e3;
  r.readP99Us = sim::toMicros(reads.percentile(0.99));
  r.updateP99Us = sim::toMicros(updates.percentile(0.99));

  // Per-stage RPC breakdown from the shared TimeTrace.
  using Stage = obs::TimeTrace::Stage;
  const auto& dw = cluster.timeTrace().stageHistogram(Stage::kDispatchWait);
  const auto& ws = cluster.timeTrace().stageHistogram(Stage::kWorkerService);
  const auto& rw = cluster.timeTrace().stageHistogram(Stage::kReplicationWait);
  r.dispatchWaitMeanUs = dw.mean() / 1e3;
  r.dispatchWaitP99Us = sim::toMicros(dw.percentile(0.99));
  r.workerServiceMeanUs = ws.mean() / 1e3;
  r.workerServiceP99Us = sim::toMicros(ws.percentile(0.99));
  r.replicationWaitMeanUs = rw.mean() / 1e3;
  r.replicationWaitP99Us = sim::toMicros(rw.percentile(0.99));

  r.opFailures = cluster.totalOpFailures();
  r.rpcTimeouts = cluster.totalRpcTimeouts();
  r.rpcRetries = cluster.totalRpcRetries();
  r.crashed = r.opFailures > 0;

  const auto txCount = [&cluster](const char* name) {
    return static_cast<std::uint64_t>(cluster.metrics().value(name));
  };
  r.txPrepares = txCount("cluster.tx.prepares");
  r.txCommits = txCount("cluster.tx.commits");
  r.txAborts = txCount("cluster.tx.aborts");
  r.txConflicts = txCount("cluster.tx.conflicts");
  r.txOrphansResolved = txCount("cluster.tx.orphans_resolved");

  if (cluster.sloTracker().enabled()) {
    cluster.sloTracker().finish();
    r.sloWindows = cluster.sloTracker().rows();
    r.sloBreachedWindows = cluster.sloTracker().breachedWindows();
  }

  if (!cfg.metricsDir.empty()) cluster.exportMetrics(cfg.metricsDir);
  return r;
}

}  // namespace rc::core
