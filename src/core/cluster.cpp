#include "core/cluster.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <fstream>

namespace rc::core {

Cluster::Cluster(ClusterParams params)
    : params_(params),
      sim_(params.seed),
      net_(sim_, params.transport),
      rpc_(sim_, net_),
      trace_(sim_),
      journal_(sim_),
      slo_(sim_) {
  params_.master.replication.factor = params_.replicationFactor;
  params_.clientNode.metered = false;

  // Every stage stamp mirrors into the flight ring (near-zero cost); the
  // ring is only *dumped* when something arms it — an SLO breach here, or
  // a fault injection (FaultInjector::fire).
  trace_.setFlightRecorder(&flight_);
  slo_.onBreach = [this](const obs::SloTracker::WindowRow& row) {
    flight_.trigger(sim_.now(), "slo_breach:" + row.cls);
  };

  directory_.masterOn = [this](node::NodeId n) -> server::MasterService* {
    const int idx = n - 1;
    if (idx < 0 || idx >= serverCount()) return nullptr;
    Server& s = servers_[static_cast<std::size_t>(idx)];
    return s.node->processRunning() ? s.master.get() : nullptr;
  };
  directory_.backupOn = [this](node::NodeId n) -> server::BackupService* {
    const int idx = n - 1;
    if (idx < 0 || idx >= serverCount()) return nullptr;
    Server& s = servers_[static_cast<std::size_t>(idx)];
    return s.node->processRunning() ? s.backup.get() : nullptr;
  };
  directory_.liveBackups = [this] {
    std::vector<node::NodeId> out;
    out.reserve(static_cast<std::size_t>(serverCount()));
    for (int i = 0; i < serverCount(); ++i) {
      if (serverAlive(i)) out.push_back(serverNodeId(i));
    }
    return out;
  };

  // Node 0: coordinator (its own machine, not metered — the paper reports
  // power for the 40 PDU-equipped RAMCloud server nodes only).
  node::NodeParams coordNodeParams = params_.serverNode;
  coordNodeParams.metered = false;
  coordNode_ = std::make_unique<node::Node>(sim_, 0, coordNodeParams);
  coordNode_->startProcess();
  coord_ = std::make_unique<coordinator::Coordinator>(
      *coordNode_, rpc_, directory_, params_.coordinator,
      sim_.rng().fork(0xc0));
  coord_->setJournal(&journal_);
  rpc_.bind(0, net::kCoordinatorPort, coord_.get());
  // Masters consult the coordinator's lease table through the directory
  // (state side-channel; the timing-bearing RPCs are kOpenLease/kRenewLease).
  directory_.leaseValid = [this](std::uint64_t clientId) {
    return coord_->leaseValid(clientId);
  };

  auto planLookup = [this](std::uint64_t id) { return coord_->planById(id); };

  servers_.reserve(static_cast<std::size_t>(params_.servers));
  for (int i = 0; i < params_.servers; ++i) {
    const node::NodeId nid = serverNodeId(i);
    Server s;
    s.node = std::make_unique<node::Node>(sim_, nid, params_.serverNode);
    s.node->startProcess();
    s.dispatch = std::make_unique<server::Dispatch>(sim_, params_.dispatch);
    s.master = std::make_unique<server::MasterService>(
        *s.node, *s.dispatch, rpc_, directory_, params_.master, planLookup,
        /*coordinatorNode=*/0, sim_.rng().fork(0x1000 + nid));
    s.backup = std::make_unique<server::BackupService>(
        *s.node, *s.dispatch, rpc_, directory_, params_.backup, planLookup);
    rpc_.bind(nid, net::kMasterPort, s.master.get());
    rpc_.bind(nid, net::kBackupPort, s.backup.get());
    coord_->enlistServer(nid);

    const std::string prefix = "node" + std::to_string(nid);
    s.node->registerMetrics(metrics_, prefix);
    s.dispatch->registerMetrics(metrics_, prefix + ".master.dispatch");
    s.dispatch->registerOverloadMetrics(metrics_, prefix + ".dispatch");
    // Degradation ladder: exemplar capture is browned out while *any*
    // server sheds; overload_enter/exit journal events bracket the window.
    s.dispatch->onOverloadState = [this, nid](bool on) {
      if (on) {
        ++sheddingServers_;
        journal_.event("overload_enter", static_cast<int>(nid));
      } else {
        if (sheddingServers_ > 0) --sheddingServers_;
        journal_.event("overload_exit", static_cast<int>(nid));
      }
      slo_.setExemplarBrownout(sheddingServers_ > 0);
    };
    s.master->registerMetrics(metrics_, prefix + ".master");
    s.backup->registerMetrics(metrics_, prefix + ".backup");
    s.master->setTimeTrace(&trace_);
    s.master->setJournal(&journal_);
    s.backup->setJournal(&journal_);
    servers_.push_back(std::move(s));
  }

  // Journal energy probe: cumulative per-component model joules per node
  // since t=0 (coordinator + servers; client machines are unmetered -> 0).
  energyBaselines_[0] = coordNode_->snapshotPower();
  for (int i = 0; i < serverCount(); ++i) {
    energyBaselines_[serverNodeId(i)] =
        servers_[static_cast<std::size_t>(i)].node->snapshotPower();
  }
  journal_.setEnergyProbe(
      [this](int nodeId) -> obs::EventJournal::EnergyBreakdown {
        obs::EventJournal::EnergyBreakdown out;
        auto it = energyBaselines_.find(nodeId);
        if (it == energyBaselines_.end()) return out;
        const node::Node* n =
            nodeId == 0
                ? coordNode_.get()
                : servers_[static_cast<std::size_t>(nodeId - 1)].node.get();
        const auto by = n->componentEnergySince(it->second, sim_.now());
        out.cpu = by[static_cast<std::size_t>(power::Component::kCpu)];
        out.dram = by[static_cast<std::size_t>(power::Component::kDram)];
        out.nic = by[static_cast<std::size_t>(power::Component::kNic)];
        out.disk = by[static_cast<std::size_t>(power::Component::kDisk)];
        out.platform =
            by[static_cast<std::size_t>(power::Component::kPlatform)];
        return out;
      });

  // NIC frames charge the server-side ledger; coordinator and client
  // machines are unmetered so their frames only burn (uncounted) energy
  // on their own nodes, matching the paper's server-only PDU scope.
  installEnergyCharge();

  // SLO window energy: joules charged to the class's tenant slot across
  // all server ledgers (tenant slot = class id + 1; see docs/ENERGY.md).
  slo_.setEnergyProbe([this](int classId) {
    const std::uint16_t slot = static_cast<std::uint16_t>(classId + 1);
    double j = 0;
    for (const auto& s : servers_) j += s.node->energyMeter().tenantJoules(slot);
    return j;
  });

  clients_.reserve(static_cast<std::size_t>(params_.clients));
  for (int i = 0; i < params_.clients; ++i) {
    const node::NodeId nid = clientNodeId(i);
    ClientHost c;
    c.node = std::make_unique<node::Node>(sim_, nid, params_.clientNode);
    c.node->startProcess();
    c.rc = std::make_unique<client::RamCloudClient>(
        sim_, rpc_, nid, /*coordinator=*/0,
        [this]() -> const coordinator::TabletMap* {
          return &coord_->tabletMap();
        },
        params_.client);
    c.rc->setTimeTrace(&trace_);
    clients_.push_back(std::move(c));
  }

  registerClusterMetrics();
  coord_->startFailureDetector();
}

void Cluster::registerClusterMetrics() {
  trace_.registerMetrics(metrics_, "cluster.rpc");
  journal_.registerMetrics(metrics_, "cluster.journal");
  slo_.registerMetrics(metrics_, "slo");
  flight_.registerMetrics(metrics_, "cluster.flight");
  metrics_.probeCounter("cluster.client.ops", "ops", [this] {
    return static_cast<double>(totalOpsCompleted());
  });
  metrics_.probeCounter("cluster.client.failures", "ops", [this] {
    return static_cast<double>(totalOpFailures());
  });
  metrics_.probeCounter("cluster.rpc.timeouts", "ops", [this] {
    return static_cast<double>(totalRpcTimeouts());
  });
  metrics_.probeGauge("cluster.alive_servers", "servers", [this] {
    return static_cast<double>(aliveServerCount());
  });
  // Cluster energy rollups over the metered servers (model integrals from
  // the construction-time origins, so the 1 Hz sampler's .rate series is a
  // per-component cluster watts timeline — docs/ENERGY.md).
  for (std::size_t ci = 0; ci < power::kComponentCount; ++ci) {
    const auto comp = static_cast<power::Component>(ci);
    metrics_.probeCounter(
        std::string("cluster.energy.") + power::componentName(comp) +
            ".joules",
        "joules", [this, ci] {
          double j = 0;
          for (int i = 0; i < serverCount(); ++i) {
            const auto& base = energyBaselines_.at(serverNodeId(i));
            j += servers_[static_cast<std::size_t>(i)]
                     .node->componentEnergySince(base, sim_.now())[ci];
          }
          return j;
        });
  }
  metrics_.probeCounter("cluster.energy.total_joules", "joules", [this] {
    double j = 0;
    for (int i = 0; i < serverCount(); ++i) {
      const auto& base = energyBaselines_.at(serverNodeId(i));
      j += servers_[static_cast<std::size_t>(i)].node->energyJoulesSince(
          base, sim_.now());
    }
    return j;
  });
  metrics_.probeGauge("cluster.power.watts", "watts", [this] {
    double w = 0;
    for (int i = 0; i < serverCount(); ++i) {
      w += servers_[static_cast<std::size_t>(i)].node->currentWatts();
    }
    return w;
  });
  metrics_.probeGauge("cluster.energy.ops_per_joule", "ops_per_joule",
                      [this] {
                        double j = 0;
                        for (int i = 0; i < serverCount(); ++i) {
                          const auto& base =
                              energyBaselines_.at(serverNodeId(i));
                          j += servers_[static_cast<std::size_t>(i)]
                                   .node->energyJoulesSince(base, sim_.now());
                        }
                        const double ops =
                            static_cast<double>(totalOpsCompleted());
                        return j > 0 ? ops / j : 0.0;
                      });
  // Replica slots lost to backup deaths and not yet repaired, summed over
  // live masters; returns to 0 once background re-replication converges.
  metrics_.probeGauge("cluster.rf_deficit", "replicas", [this] {
    std::uint64_t deficit = 0;
    for (int i = 0; i < serverCount(); ++i) {
      if (serverAlive(i)) {
        deficit += servers_[static_cast<std::size_t>(i)]
                       .master->replicaManager()
                       .rfDeficit();
      }
    }
    return static_cast<double>(deficit);
  });
  metrics_.probeCounter("net.messages_dropped", "msgs", [this] {
    return static_cast<double>(net_.messagesDropped());
  });
  // RPC timeouts observed by the transport, total and per opcode.
  metrics_.probeCounter("net.rpc.timeouts.total", "ops", [this] {
    return static_cast<double>(rpc_.timeoutsObserved());
  });
  for (std::size_t op = 0; op < net::kOpcodeCount; ++op) {
    const auto opcode = static_cast<net::Opcode>(op);
    metrics_.probeCounter(
        std::string("net.rpc.timeouts.") + net::opcodeName(opcode), "ops",
        [this, opcode] {
          return static_cast<double>(rpc_.timeoutsForOpcode(opcode));
        });
  }
  // Client-side retries (re-issues of an already-sent RPC), mirroring the
  // timeout counters above.
  metrics_.probeCounter("net.rpc.retries.total", "ops", [this] {
    return static_cast<double>(totalRpcRetries());
  });
  for (std::size_t op = 0; op < net::kOpcodeCount; ++op) {
    const auto opcode = static_cast<net::Opcode>(op);
    metrics_.probeCounter(
        std::string("net.rpc.retries.") + net::opcodeName(opcode), "ops",
        [this, opcode] {
          std::uint64_t n = 0;
          for (const auto& c : clients_) {
            if (c.rc) n += c.rc->retriesForOpcode(opcode);
          }
          return static_cast<double>(n);
        });
  }
  // Overload control (docs/OVERLOAD.md): kOverloaded bounces observed by
  // clients, total and per opcode, mirroring the retry counters above —
  // plus cluster-wide shed totals and the exemplar-brownout state.
  metrics_.probeCounter("net.rpc.overloaded.total", "ops", [this] {
    return static_cast<double>(totalOverloadedBounces());
  });
  for (std::size_t op = 0; op < net::kOpcodeCount; ++op) {
    const auto opcode = static_cast<net::Opcode>(op);
    metrics_.probeCounter(
        std::string("net.rpc.overloaded.") + net::opcodeName(opcode), "ops",
        [this, opcode] {
          std::uint64_t n = 0;
          for (const auto& c : clients_) {
            if (c.rc) n += c.rc->overloadedForOpcode(opcode);
          }
          return static_cast<double>(n);
        });
  }
  metrics_.probeCounter("cluster.shed_requests", "ops", [this] {
    return static_cast<double>(totalShedRequests());
  });
  metrics_.probeGauge("cluster.shedding_servers", "servers", [this] {
    return static_cast<double>(sheddingServers_);
  });
  metrics_.probeCounter("slo.exemplar_brownouts", "count", [this] {
    return static_cast<double>(slo_.brownoutEngagements());
  });
  // Exactly-once layer, summed over live masters (docs/LINEARIZABILITY.md).
  const auto sumUnacked =
      [this](std::uint64_t (server::UnackedRpcResults::*probe)() const) {
        std::uint64_t n = 0;
        for (int i = 0; i < serverCount(); ++i) {
          if (!serverAlive(i)) continue;
          const auto& u = servers_[static_cast<std::size_t>(i)]
                              .master->unackedRpcResults();
          n += (u.*probe)();
        }
        return static_cast<double>(n);
      };
  metrics_.probeCounter("cluster.linearize.duplicates_suppressed", "ops",
                        [sumUnacked] {
                          return sumUnacked(
                              &server::UnackedRpcResults::duplicatesSuppressed);
                        });
  metrics_.probeCounter("cluster.linearize.completion_records", "ops",
                        [sumUnacked] {
                          return sumUnacked(
                              &server::UnackedRpcResults::completionsRecorded);
                        });
  metrics_.probeCounter("cluster.linearize.records_recovered", "ops",
                        [sumUnacked] {
                          return sumUnacked(
                              &server::UnackedRpcResults::recordsRecovered);
                        });
  metrics_.probeCounter("cluster.linearize.records_gced", "ops", [sumUnacked] {
    return sumUnacked(&server::UnackedRpcResults::recordsGced);
  });
  metrics_.probeGauge("cluster.linearize.tracked_clients", "items", [this] {
    std::uint64_t n = 0;
    for (int i = 0; i < serverCount(); ++i) {
      if (!serverAlive(i)) continue;
      n += servers_[static_cast<std::size_t>(i)]
               .master->unackedRpcResults()
               .trackedClients();
    }
    return static_cast<double>(n);
  });
  // Minitransaction layer, summed over live masters (docs/TRANSACTIONS.md).
  const auto sumTx =
      [this](std::uint64_t (server::TxLockTable::*probe)() const) {
        std::uint64_t n = 0;
        for (int i = 0; i < serverCount(); ++i) {
          if (!serverAlive(i)) continue;
          const auto& t =
              servers_[static_cast<std::size_t>(i)].master->txLockTable();
          n += (t.*probe)();
        }
        return static_cast<double>(n);
      };
  metrics_.probeCounter("cluster.tx.prepares", "ops", [sumTx] {
    return sumTx(&server::TxLockTable::prepares);
  });
  metrics_.probeCounter("cluster.tx.commits", "ops", [sumTx] {
    return sumTx(&server::TxLockTable::commits);
  });
  metrics_.probeCounter("cluster.tx.aborts", "ops", [sumTx] {
    return sumTx(&server::TxLockTable::aborts);
  });
  metrics_.probeCounter("cluster.tx.conflicts", "ops", [sumTx] {
    return sumTx(&server::TxLockTable::conflicts);
  });
  metrics_.probeCounter("cluster.tx.orphans_resolved", "ops", [sumTx] {
    return sumTx(&server::TxLockTable::orphansResolved);
  });
  metrics_.probeCounter("cluster.tx.locks_recovered", "ops", [sumTx] {
    return sumTx(&server::TxLockTable::locksRecovered);
  });
  metrics_.probeGauge("cluster.tx.locks_held", "items", [this] {
    std::uint64_t n = 0;
    for (int i = 0; i < serverCount(); ++i) {
      if (!serverAlive(i)) continue;
      n += servers_[static_cast<std::size_t>(i)]
               .master->txLockTable()
               .locksHeld();
    }
    return static_cast<double>(n);
  });
  metrics_.probeCounter("coordinator.tx.resolutions_started", "ops", [this] {
    return static_cast<double>(coord_->txResolutionsStarted());
  });
  metrics_.probeCounter("coordinator.tx.resolutions_committed", "ops",
                        [this] {
                          return static_cast<double>(
                              coord_->txResolutionsCommitted());
                        });
  metrics_.probeCounter("coordinator.tx.resolutions_aborted", "ops", [this] {
    return static_cast<double>(coord_->txResolutionsAborted());
  });
  metrics_.probeCounter("coordinator.tx.resolutions_abandoned", "ops",
                        [this] {
                          return static_cast<double>(
                              coord_->txResolutionsAbandoned());
                        });
  metrics_.probeCounter("coordinator.linearize.leases_issued", "ops", [this] {
    return static_cast<double>(coord_->leasesIssued());
  });
  metrics_.probeCounter("coordinator.linearize.lease_renewals", "ops",
                        [this] {
                          return static_cast<double>(coord_->leaseRenewals());
                        });
  metrics_.probeCounter("coordinator.linearize.leases_expired", "ops",
                        [this] {
                          return static_cast<double>(coord_->leasesExpired());
                        });
  metrics_.probeGauge("coordinator.linearize.active_leases", "items", [this] {
    return static_cast<double>(coord_->activeLeases());
  });
}

void Cluster::startStatsSampling() {
  if (!sampler_) {
    sampler_ = std::make_unique<obs::StatsSampler>(sim_, metrics_);
  }
}

bool Cluster::exportMetrics(const std::string& dir) {
  // Close in-progress SLO windows first so the registry probes sampled by
  // the exporter agree with slo.jsonl, and stop the PDUs (final fractional
  // sample) so the sampled traces cover exactly [start, now] — that is
  // what makes the energy.jsonl reconciliation rows exact.
  if (slo_.enabled()) slo_.finish();
  stopPduSampling();
  obs::MetricsExporter exporter(metrics_);
  exporter.attachTimeTrace(&trace_);
  if (sampler_) exporter.attachSampler(sampler_.get());
  for (int i = 0; i < serverCount(); ++i) {
    const auto* pdu = servers_[static_cast<std::size_t>(i)].node->pdu();
    if (pdu != nullptr) {
      exporter.addSeries(
          "node" + std::to_string(serverNodeId(i)) + ".pdu.watts",
          &pdu->trace());
    }
  }
  if (!exporter.exportRunDir(dir)) return false;
  if (!journal_.writeJsonl(dir + "/events.jsonl")) return false;
  if (slo_.enabled() && !slo_.writeJsonl(dir + "/slo.jsonl")) return false;
  if (!writeEnergyJsonl(dir + "/energy.jsonl")) return false;
  // flight.jsonl appears only when something armed the recorder: a clean
  // run's dir stays flight-free by design (acceptance criterion).
  if (flight_.triggered() && !flight_.writeJsonl(dir + "/flight.jsonl")) {
    return false;
  }
  return true;
}

bool Cluster::writeEnergyJsonl(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  char line[512];
  const sim::SimTime now = sim_.now();
  double clusterJ = 0;
  for (int i = 0; i < serverCount(); ++i) {
    const node::Node& n = *servers_[static_cast<std::size_t>(i)].node;
    const int nid = serverNodeId(i);
    // Reconciliation origin: the snapshot taken when PDU sampling began (so
    // total_j and pdu_j cover the same window and must agree within the
    // 0.1 % gate), else the construction-time origin with pdu_j = 0.
    const node::Node::PowerSnapshot* origin = n.pduBaseline();
    if (origin == nullptr) origin = &energyBaselines_.at(nid);
    const auto by = n.componentEnergySince(*origin, now);
    double total = 0;
    for (double c : by) total += c;
    clusterJ += total;
    const double seconds = sim::toSeconds(now - origin->cpu.time);
    const double pduJ =
        n.pdu() != nullptr ? n.pdu()->totalSampledJoules() : 0.0;
    std::snprintf(
        line, sizeof(line),
        "{\"type\":\"energy_node\",\"node\":%d,\"seconds\":%.9f,"
        "\"cpu_j\":%.6f,\"dram_j\":%.6f,\"nic_j\":%.6f,\"disk_j\":%.6f,"
        "\"platform_j\":%.6f,\"total_j\":%.6f,\"pdu_j\":%.6f,"
        "\"mean_w\":%.6f}\n",
        nid, seconds, by[0], by[1], by[2], by[3], by[4], total, pduJ,
        seconds > 0 ? total / seconds : 0.0);
    os << line;
    // Attribution cells: cumulative dynamic joules since node construction
    // (the ledger's origin; a superset of the PDU window — docs/ENERGY.md).
    n.energyMeter().forEachCell([&](power::Component c, power::OpClass o,
                                    std::uint16_t slot, double j) {
      std::snprintf(line, sizeof(line),
                    "{\"type\":\"energy_cell\",\"node\":%d,"
                    "\"component\":\"%s\",\"class\":\"%s\",\"tenant\":%u,"
                    "\"joules\":%.9f}\n",
                    nid, power::componentName(c), power::opClassName(o),
                    static_cast<unsigned>(slot), j);
      os << line;
    });
    // Dynamic energy no charge site claimed (worker spin-before-sleep,
    // polling core, untagged IOs): continuous integral minus ledger sum,
    // clamped against float rounding. NIC/DRAM dynamics exist only as
    // ledger charges, so their remainder is identically zero.
    const auto cpuSnap = n.snapshotCpu();
    const double cpuDyn = n.params().energy.cpuActiveWattsPerCore *
                          (cpuSnap.busyCoreSeconds +
                           cpuSnap.auxBusyCoreSeconds);
    const double diskDyn =
        n.params().energy.diskActiveWatts * n.disk().busySeconds(now);
    const double cpuRem = std::max(
        0.0, cpuDyn - n.energyMeter().componentJoules(power::Component::kCpu));
    const double diskRem =
        std::max(0.0, diskDyn - n.energyMeter().componentJoules(
                                    power::Component::kDisk));
    std::snprintf(line, sizeof(line),
                  "{\"type\":\"energy_remainder\",\"node\":%d,"
                  "\"component\":\"cpu\",\"joules\":%.9f}\n",
                  nid, cpuRem);
    os << line;
    std::snprintf(line, sizeof(line),
                  "{\"type\":\"energy_remainder\",\"node\":%d,"
                  "\"component\":\"disk\",\"joules\":%.9f}\n",
                  nid, diskRem);
    os << line;
  }
  // Per-tenant rollup: one row per declared SLO class (tenant slot id+1),
  // summed over the server ledgers — the joules/op table behind
  // `rcdiag energy` and the paper's SS VII efficiency framing.
  for (int id = 0; id < slo_.classCount(); ++id) {
    const std::uint16_t slot = static_cast<std::uint16_t>(id + 1);
    double j = 0;
    for (int i = 0; i < serverCount(); ++i) {
      j += servers_[static_cast<std::size_t>(i)]
               .node->energyMeter()
               .tenantJoules(slot);
    }
    const std::uint64_t ops = slo_.classRecorded(id);
    std::snprintf(
        line, sizeof(line),
        "{\"type\":\"energy_tenant\",\"class\":\"%s\",\"tenant\":%u,"
        "\"joules\":%.6f,\"ops\":%llu,\"j_per_op\":%.9f,"
        "\"ops_per_j\":%.4f}\n",
        slo_.className(id).c_str(), static_cast<unsigned>(slot), j,
        static_cast<unsigned long long>(ops),
        ops > 0 && j > 0 ? j / static_cast<double>(ops) : 0.0,
        j > 0 ? static_cast<double>(ops) / j : 0.0);
    os << line;
  }
  const std::uint64_t ops = totalOpsCompleted();
  std::snprintf(line, sizeof(line),
                "{\"type\":\"energy_cluster\",\"servers\":%d,"
                "\"total_j\":%.6f,\"ops\":%llu,\"j_per_op\":%.9f,"
                "\"ops_per_j\":%.4f}\n",
                serverCount(), clusterJ,
                static_cast<unsigned long long>(ops),
                ops > 0 && clusterJ > 0
                    ? clusterJ / static_cast<double>(ops)
                    : 0.0,
                clusterJ > 0 ? static_cast<double>(ops) / clusterJ : 0.0);
  os << line;
  return static_cast<bool>(os);
}

Cluster::~Cluster() = default;

int Cluster::aliveServerCount() const {
  int n = 0;
  for (int i = 0; i < serverCount(); ++i) {
    if (serverAlive(i)) ++n;
  }
  return n;
}

std::uint64_t Cluster::createTable(const std::string& name, int serverSpan) {
  // The paper sets ServerSpan = number of servers: uniform distribution.
  const int span = serverSpan < 0 ? params_.servers : serverSpan;
  return coord_->createTable(name, span);
}

void Cluster::bulkLoad(std::uint64_t tableId, std::uint64_t records,
                       std::uint32_t valueBytes) {
  for (std::uint64_t key = 0; key < records; ++key) {
    const server::ServerId owner = ownerOfKey(tableId, key);
    if (owner == node::kInvalidNode) continue;
    if (auto* m = directory_.masterOn(owner)) {
      m->bulkInsert(tableId, key, valueBytes, sim_.now());
    }
  }
  for (auto& s : servers_) {
    if (s.node->processRunning()) s.master->installReplicasAfterBulkLoad();
  }
}

void Cluster::startPduSampling() {
  for (auto& s : servers_) s.node->startPduSampling();
}

void Cluster::stopPduSampling() {
  for (auto& s : servers_) s.node->stopPduSampling();
}

void Cluster::installEnergyCharge() {
  for (auto& s : servers_) {
    net_.setNicEnergyNode(s.node->id(), s.node.get());
  }
}

void Cluster::setEnergyMetering(bool on) {
  energyMetering_ = on;
  coordNode_->setEnergyMetering(on);
  for (auto& s : servers_) s.node->setEnergyMetering(on);
  for (auto& c : clients_) c.node->setEnergyMetering(on);
  // Uninstall the network hook entirely when off so the A/B overhead gate
  // measures the true per-frame cost, not a disabled-meter early return.
  if (on) {
    installEnergyCharge();
  } else {
    net_.clearNicEnergy();
  }
}

void Cluster::configureYcsb(
    std::uint64_t tableId, const ycsb::WorkloadSpec& spec,
    const ycsb::YcsbClientParams& clientParams,
    const std::function<void(int, ycsb::YcsbClientParams&)>& perClient) {
  for (int i = 0; i < clientCount(); ++i) {
    ClientHost& c = clients_[static_cast<std::size_t>(i)];
    ycsb::YcsbClientParams p = clientParams;
    // Disjoint insert key ranges per client machine (workload D).
    p.insertKeyBase =
        spec.recordCount + static_cast<std::uint64_t>(i + 1) * (1ULL << 32);
    if (perClient) perClient(i, p);
    c.ycsb = std::make_unique<ycsb::YcsbClient>(
        sim_, *c.rc, tableId, spec, p,
        sim_.rng().fork(0x9c5b + static_cast<std::uint64_t>(i)));
    c.ycsb->setSloTracker(&slo_);
  }
}

void Cluster::configureOpenLoop(
    std::uint64_t tableId, const ycsb::WorkloadSpec& spec,
    const std::vector<load::TrafficSourceParams>& sources) {
  for (int i = 0; i < clientCount(); ++i) {
    if (static_cast<std::size_t>(i) >= sources.size()) break;
    ClientHost& c = clients_[static_cast<std::size_t>(i)];
    load::TrafficSourceParams p = sources[static_cast<std::size_t>(i)];
    p.insertKeyBase =
        spec.recordCount + static_cast<std::uint64_t>(i + 1) * (1ULL << 32);
    // Splitmix-forked per-source RNG: seeded purely from (cluster seed,
    // host index), independent of how much entropy the root stream already
    // spent — so source streams replay bit-identically per seed.
    const auto salt = static_cast<std::uint64_t>(i);
    sim::Rng rng(sim::Backoff::mix(params_.seed ^ (salt * 0x9e3779b9ULL)),
                 sim::Backoff::mix(~salt) | 1u);
    c.traffic = std::make_unique<load::TrafficSource>(sim_, *c.rc, tableId,
                                                      spec, p, rng);
    c.traffic->setSloTracker(&slo_);
  }
}

void Cluster::startTraffic() {
  for (auto& c : clients_) {
    if (c.traffic) c.traffic->start();
  }
}

void Cluster::stopTraffic() {
  for (auto& c : clients_) {
    if (c.traffic) c.traffic->stop();
  }
}

void Cluster::configureQos(const server::QosParams& qos) {
  for (int i = 0; i < serverCount(); ++i) {
    Server& s = servers_[static_cast<std::size_t>(i)];
    const node::NodeId nid = serverNodeId(i);
    s.dispatch->configureQos(qos);
    s.dispatch->registerQosMetrics(
        metrics_, "node" + std::to_string(nid) + ".dispatch");
    s.dispatch->onQosEpisode = [this, nid](const std::string&) {
      journal_.event("qos_throttle", nid);
    };
  }
  // Cluster-level offered/admitted/throttled aggregates per policy, for
  // rcperf top's offered-vs-admitted line.
  for (std::size_t p = 0; p < qos.tenants.size(); ++p) {
    const std::string base = "cluster.qos." + qos.tenants[p].name;
    auto sum = [this, p](auto pick) {
      double v = 0;
      for (const auto& s : servers_) {
        if (p < s.dispatch->qosSlotCount()) {
          v += static_cast<double>(pick(s.dispatch->qosSlot(p)));
        }
      }
      return v;
    };
    metrics_.probeCounter(base + ".offered", "ops", [sum] {
      return sum([](const server::Dispatch::QosSlot& s) { return s.offered; });
    });
    metrics_.probeCounter(base + ".admitted", "ops", [sum] {
      return sum(
          [](const server::Dispatch::QosSlot& s) { return s.admitted; });
    });
    metrics_.probeCounter(base + ".throttled", "ops", [sum] {
      return sum(
          [](const server::Dispatch::QosSlot& s) { return s.throttled; });
    });
    metrics_.probeCounter(base + ".episodes", "count", [sum] {
      return sum(
          [](const server::Dispatch::QosSlot& s) { return s.episodes; });
    });
  }
}

std::uint64_t Cluster::totalArrivalsGenerated() const {
  std::uint64_t n = 0;
  for (const auto& c : clients_) {
    if (c.traffic) n += c.traffic->arrivalsGenerated();
  }
  return n;
}

std::uint64_t Cluster::totalGeneratorWakeups() const {
  std::uint64_t n = 0;
  for (const auto& c : clients_) {
    if (c.traffic) n += c.traffic->wakeups();
  }
  return n;
}

std::uint64_t Cluster::totalSourceDropped() const {
  std::uint64_t n = 0;
  for (const auto& c : clients_) {
    if (c.traffic) n += c.traffic->sourceDropped();
  }
  return n;
}

std::uint64_t Cluster::qosCounter(const std::string& policy,
                                  const std::string& which) const {
  std::uint64_t n = 0;
  for (const auto& s : servers_) {
    for (std::size_t i = 0; i < s.dispatch->qosSlotCount(); ++i) {
      const server::Dispatch::QosSlot& slot = s.dispatch->qosSlot(i);
      if (slot.name != policy) continue;
      if (which == "offered") n += slot.offered;
      if (which == "admitted") n += slot.admitted;
      if (which == "throttled") n += slot.throttled;
      if (which == "episodes") n += slot.episodes;
    }
  }
  return n;
}

void Cluster::startYcsb() {
  for (auto& c : clients_) {
    if (c.ycsb) c.ycsb->start();
  }
}

void Cluster::stopYcsb() {
  for (auto& c : clients_) {
    if (c.ycsb) c.ycsb->stop();
  }
}

bool Cluster::allYcsbDone() const {
  for (const auto& c : clients_) {
    if (c.ycsb && !c.ycsb->done()) return false;
  }
  return true;
}

std::uint64_t Cluster::totalOpsCompleted() const {
  std::uint64_t n = 0;
  for (const auto& c : clients_) {
    if (c.ycsb) n += c.ycsb->stats().opsCompleted;
    if (c.traffic) n += c.traffic->stats().opsCompleted;
  }
  return n;
}

std::uint64_t Cluster::totalOpFailures() const {
  std::uint64_t n = 0;
  for (const auto& c : clients_) {
    if (c.ycsb) n += c.ycsb->stats().failures;
    if (c.traffic) n += c.traffic->stats().failures;
  }
  return n;
}

std::uint64_t Cluster::totalRpcTimeouts() const {
  std::uint64_t n = 0;
  for (const auto& c : clients_) {
    if (c.rc) n += c.rc->stats().rpcTimeouts;
  }
  return n;
}

std::uint64_t Cluster::totalRpcRetries() const {
  std::uint64_t n = 0;
  for (const auto& c : clients_) {
    if (c.rc) n += c.rc->totalRetries();
  }
  return n;
}

std::uint64_t Cluster::totalShedRequests() const {
  std::uint64_t n = 0;
  for (const auto& s : servers_) n += s.dispatch->shedTotal();
  return n;
}

std::uint64_t Cluster::totalOverloadedBounces() const {
  std::uint64_t n = 0;
  for (const auto& c : clients_) {
    if (c.rc) n += c.rc->stats().overloadedBounces;
  }
  return n;
}

void Cluster::crashServer(int idx) {
  Server& s = servers_[static_cast<std::size_t>(idx)];
  if (!s.node->processRunning()) return;
  const node::NodeId nid = serverNodeId(idx);
  s.master->crash();
  s.backup->crash();
  s.dispatch->crash();
  s.node->crashProcess();
  rpc_.unbind(nid, net::kMasterPort);
  rpc_.unbind(nid, net::kBackupPort);
  // Deterministically close spans the dead process left open (they are
  // flagged abandoned rather than dangling forever).
  journal_.abandonNode(nid);
}

int Cluster::pickRandomServerIndex() {
  return static_cast<int>(
      sim_.rng().uniformInt(static_cast<std::uint64_t>(serverCount())));
}

void Cluster::migrateTablet(const server::Tablet& tablet, int destIdx,
                            std::function<void(bool)> done) {
  coord_->migrateTablet(tablet, serverNodeId(destIdx), std::move(done));
}

void Cluster::drainServer(int idx, std::function<void(bool)> done) {
  const node::NodeId src = serverNodeId(idx);
  const auto tablets = coord_->tabletMap().tabletsOwnedBy(src);
  if (tablets.empty()) {
    if (done) done(true);
    return;
  }
  // Round-robin destinations over the other active servers.
  std::vector<int> dests;
  for (int i = 0; i < serverCount(); ++i) {
    if (i != idx && serverAlive(i)) dests.push_back(i);
  }
  if (dests.empty()) {
    if (done) done(false);
    return;
  }
  struct State {
    int pending = 0;
    bool ok = true;
    std::function<void(bool)> done;
  };
  auto st = std::make_shared<State>();
  st->pending = static_cast<int>(tablets.size());
  st->done = std::move(done);
  for (std::size_t i = 0; i < tablets.size(); ++i) {
    migrateTablet(tablets[i], dests[i % dests.size()], [st](bool ok) {
      st->ok &= ok;
      if (--st->pending == 0 && st->done) st->done(st->ok);
    });
  }
}

bool Cluster::suspendServer(int idx) {
  const node::NodeId nid = serverNodeId(idx);
  if (!coord_->decommissionServer(nid)) return false;
  Server& s = servers_[static_cast<std::size_t>(idx)];
  s.master->crash();
  s.backup->crash();
  s.dispatch->crash();
  rpc_.unbind(nid, net::kMasterPort);
  rpc_.unbind(nid, net::kBackupPort);
  s.node->suspendMachine();
  journal_.abandonNode(nid);
  return true;
}

void Cluster::resumeServer(int idx) {
  Server& s = servers_[static_cast<std::size_t>(idx)];
  if (!s.node->suspended()) return;
  const node::NodeId nid = serverNodeId(idx);
  s.node->resumeMachine();
  s.dispatch->restart();
  rpc_.bind(nid, net::kMasterPort, s.master.get());
  rpc_.bind(nid, net::kBackupPort, s.backup.get());
  coord_->enlistServer(nid);
}

int Cluster::activeServerCount() const {
  int n = 0;
  for (int i = 0; i < serverCount(); ++i) {
    if (serverAlive(i)) ++n;
  }
  return n;
}

server::ServerId Cluster::ownerOfKey(std::uint64_t tableId,
                                     std::uint64_t keyId) const {
  const std::uint64_t h = hash::keyHash(hash::Key{tableId, keyId});
  const auto* e = coord_->tabletMap().lookup(tableId, h);
  return e == nullptr ? node::kInvalidNode : e->tablet.owner;
}

bool Cluster::verifyAllKeysPresent(std::uint64_t tableId,
                                   std::uint64_t records,
                                   std::uint64_t* firstMissing) const {
  for (std::uint64_t key = 0; key < records; ++key) {
    const server::ServerId owner = ownerOfKey(tableId, key);
    server::MasterService* m =
        owner == node::kInvalidNode ? nullptr : directory_.masterOn(owner);
    if (m == nullptr ||
        m->objectMap().get(hash::Key{tableId, key}) == nullptr) {
      if (firstMissing != nullptr) *firstMissing = key;
      return false;
    }
  }
  return true;
}

}  // namespace rc::core
