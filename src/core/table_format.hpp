#pragma once

#include <iostream>
#include <string>
#include <vector>

namespace rc::core {

/// Fixed-width ASCII table printer for the benchmark binaries' paper-style
/// output, plus shape-check verdict helpers.
class TableFormatter {
 public:
  explicit TableFormatter(std::vector<std::string> headers);

  void addRow(std::vector<std::string> cells);
  void print(std::ostream& os = std::cout) const;

  static std::string num(double v, int precision = 1);
  static std::string kops(double opsPerSec, int precision = 0);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints "shape-check: PASS/FAIL — <what>" and returns ok (bench binaries
/// aggregate these into their exit status).
bool shapeCheck(bool ok, const std::string& what,
                std::ostream& os = std::cout);

/// True when `value` lies within [lo, hi].
inline bool within(double value, double lo, double hi) {
  return value >= lo && value <= hi;
}

}  // namespace rc::core
