#include "core/table_format.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace rc::core {

TableFormatter::TableFormatter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TableFormatter::addRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TableFormatter::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto line = [&](char fill) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      os << '+' << std::string(width[c] + 2, fill);
    }
    os << "+\n";
  };
  auto printRow = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      os << "| " << std::setw(static_cast<int>(width[c])) << row[c] << ' ';
    }
    os << "|\n";
  };
  line('-');
  printRow(headers_);
  line('=');
  for (const auto& row : rows_) printRow(row);
  line('-');
}

std::string TableFormatter::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TableFormatter::kops(double opsPerSec, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << opsPerSec / 1e3 << "K";
  return os.str();
}

bool shapeCheck(bool ok, const std::string& what, std::ostream& os) {
  os << "shape-check: " << (ok ? "PASS" : "FAIL") << " — " << what << "\n";
  return ok;
}

}  // namespace rc::core
