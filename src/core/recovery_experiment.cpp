#include "core/recovery_experiment.hpp"

#include <algorithm>
#include <memory>
#include <vector>

namespace rc::core {

namespace {

/// Per-bucket aggregate sampler over the cluster's server nodes.
class ClusterSampler {
 public:
  ClusterSampler(Cluster& cluster, RecoveryExperimentResult& out,
                 sim::Duration interval)
      : cluster_(cluster), out_(out), intervalS_(sim::toSeconds(interval)) {
    const int n = cluster_.serverCount();
    snaps_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      snaps_.push_back(cluster_.server(i).node->snapshotCpu());
      diskRead_.push_back(cluster_.server(i).node->disk().bytesRead());
      diskWrite_.push_back(cluster_.server(i).node->disk().bytesWritten());
    }
    task_ = std::make_unique<sim::PeriodicTask>(
        cluster_.sim(), interval,
        [this](sim::SimTime now) { sample(now); });
  }

  void stop() { task_.reset(); }

 private:
  void sample(sim::SimTime now) {
    const auto& pm = cluster_.params().serverNode.power;
    double cpuSum = 0;
    double wattSum = 0;
    int alive = 0;
    std::uint64_t dr = 0;
    std::uint64_t dw = 0;
    for (int i = 0; i < cluster_.serverCount(); ++i) {
      auto& nd = *cluster_.server(i).node;
      const std::size_t idx = static_cast<std::size_t>(i);
      dr += nd.disk().bytesRead() - diskRead_[idx];
      dw += nd.disk().bytesWritten() - diskWrite_[idx];
      diskRead_[idx] = nd.disk().bytesRead();
      diskWrite_[idx] = nd.disk().bytesWritten();
      if (!cluster_.serverAlive(i)) {
        snaps_[idx] = nd.snapshotCpu();
        continue;
      }
      const double u = nd.meanUtilisationSince(snaps_[idx], now);
      snaps_[idx] = nd.snapshotCpu();
      cpuSum += u;
      wattSum += pm.watts(u);
      ++alive;
    }
    if (alive > 0) {
      out_.cpuMeanPct.add(now, 100.0 * cpuSum / alive);
      out_.powerMeanW.add(now, wattSum / alive);
    }
    // Rate-normalize so the series stays MB/s at any bucket width.
    out_.diskReadMBps.add(now, static_cast<double>(dr) / 1e6 / intervalS_);
    out_.diskWriteMBps.add(now, static_cast<double>(dw) / 1e6 / intervalS_);
  }

  Cluster& cluster_;
  RecoveryExperimentResult& out_;
  double intervalS_;
  std::vector<node::CpuScheduler::Snapshot> snaps_;
  std::vector<std::uint64_t> diskRead_;
  std::vector<std::uint64_t> diskWrite_;
  std::unique_ptr<sim::PeriodicTask> task_;
};

/// Accumulates per-bucket mean latency for one probe client.
struct LatencyTimeline {
  sim::Duration bucket = sim::seconds(1);
  sim::TimeSeries series;
  sim::SimTime bucketStart = 0;
  double sumUs = 0;
  double worstUs = 0;
  std::uint64_t n = 0;

  void record(sim::SimTime now, sim::Duration latency) {
    while (now >= bucketStart + bucket) {
      flush();
      bucketStart += bucket;
    }
    sumUs += sim::toMicros(latency);
    worstUs = std::max(worstUs, sim::toMicros(latency));
    ++n;
  }
  void flush() {
    if (n > 0) {
      series.add(bucketStart + bucket, sumUs / static_cast<double>(n));
    }
    sumUs = 0;
    n = 0;
  }
};

}  // namespace

RecoveryExperimentResult runRecoveryExperiment(
    const RecoveryExperimentConfig& cfg) {
  ClusterParams cp;
  cp.servers = cfg.servers;
  cp.clients = cfg.probeClients ? 2 : 0;
  cp.seed = cfg.seed;
  cp.replicationFactor = cfg.replicationFactor;
  if (cfg.segmentBytes > 0) cp.master.log.segmentBytes = cfg.segmentBytes;

  Cluster cluster(cp);
  RecoveryExperimentResult r;

  const std::uint64_t table = cluster.createTable("usertable");
  cluster.bulkLoad(table, cfg.records, cfg.valueBytes);
  cluster.startPduSampling();
  if (!cfg.metricsDir.empty()) cluster.startStatsSampling();

  // Kill target (seeded random, as in the paper's "randomly picked").
  const int victim = cfg.killIndex >= 0 ? cfg.killIndex
                                        : cluster.pickRandomServerIndex();
  const node::NodeId victimNode = cluster.serverNodeId(victim);
  r.victimNodeId = victimNode;

  // Fig. 10 probe clients.
  LatencyTimeline lat1;
  LatencyTimeline lat2;
  lat1.bucket = cfg.sampleEvery;
  lat2.bucket = cfg.sampleEvery;
  if (cfg.probeClients) {
    ycsb::WorkloadSpec spec = ycsb::WorkloadSpec::C(cfg.records);
    ycsb::YcsbClientParams ycp;
    ycp.clientOverheadPerOp = sim::usec(18);
    // Probe gently (the paper charts per-op latency, not load).
    ycp.throttleOpsPerSec = 2000;
    cluster.configureYcsb(table, spec, ycp);

    auto& c1 = cluster.clientHost(0);
    auto& c2 = cluster.clientHost(1);
    // Key predicates bound to the victim's *pre-crash* tablets (client 1
    // keeps requesting the same lost key set throughout, as in Fig. 10).
    const std::vector<server::Tablet> victimTablets =
        cluster.coord().tabletMap().tabletsOwnedBy(victimNode);
    auto inVictim = [victimTablets, table](std::uint64_t k) {
      const std::uint64_t h = hash::keyHash(hash::Key{table, k});
      for (const auto& t : victimTablets) {
        if (t.covers(table, h)) return true;
      }
      return false;
    };
    ycsb::YcsbClientParams p1 = ycp;
    p1.keyPredicate = inVictim;
    c1.ycsb = std::make_unique<ycsb::YcsbClient>(
        cluster.sim(), *c1.rc, table, spec, p1, cluster.sim().rng().fork(71));
    ycsb::YcsbClientParams p2 = ycp;
    p2.keyPredicate = [inVictim](std::uint64_t k) { return !inVictim(k); };
    c2.ycsb = std::make_unique<ycsb::YcsbClient>(
        cluster.sim(), *c2.rc, table, spec, p2, cluster.sim().rng().fork(72));

    c1.ycsb->onOpComplete = [&lat1](sim::SimTime t, sim::Duration l, bool) {
      lat1.record(t, l);
    };
    c2.ycsb->onOpComplete = [&lat2](sim::SimTime t, sim::Duration l, bool) {
      lat2.record(t, l);
    };
    cluster.startYcsb();
  }

  ClusterSampler sampler(cluster, r, cfg.sampleEvery);

  // Victim's data volume (for the result record).
  r.dataRecoveredGB =
      static_cast<double>(
          cluster.server(victim).master->log().liveBytes()) /
      (1024.0 * 1024.0 * 1024.0);

  // Hooks: coordinator tells us when detection and recovery happen. The
  // recovery-energy window is snapshotted at both edges inside the sim
  // (detection -> finish), so it covers exactly the replay burst — no
  // detection-idle prefix, no polling-loop overshoot.
  sim::SimTime detectedAt = 0;
  bool finished = false;
  coordinator::RecoveryRecord record;
  std::vector<node::CpuScheduler::Snapshot> detectSnaps;
  cluster.coord().onCrashDetected = [&detectedAt, &detectSnaps,
                                     &cluster](server::ServerId) {
    detectedAt = cluster.sim().now();
    detectSnaps.clear();
    for (int i = 0; i < cluster.serverCount(); ++i) {
      detectSnaps.push_back(cluster.server(i).node->snapshotCpu());
    }
  };
  cluster.coord().onRecoveryFinished =
      [&finished, &record, &detectSnaps, &cluster,
       &r](const coordinator::RecoveryRecord& rec) {
        finished = true;
        record = rec;
        if (detectSnaps.empty()) return;
        const sim::SimTime now = cluster.sim().now();
        double joules = 0;
        double watts = 0;
        int alive = 0;
        for (int i = 0; i < cluster.serverCount(); ++i) {
          if (!cluster.serverAlive(i)) continue;
          auto& nd = *cluster.server(i).node;
          const auto& snap = detectSnaps[static_cast<std::size_t>(i)];
          if (now <= snap.time) continue;
          const double j = nd.energyJoulesSince(snap, now);
          joules += j;
          watts += j / sim::toSeconds(now - snap.time);
          ++alive;
        }
        if (alive > 0) {
          r.energyPerNodeDuringRecoveryJ = joules / alive;
          r.meanPowerDuringRecoveryW = watts / alive;
        }
      };

  cluster.sim().runFor(cfg.killAt);
  r.killTime = cluster.sim().now();

  cluster.crashServer(victim);

  // Run until the coordinator reports recovery finished (or give up).
  const sim::SimTime deadline = cluster.sim().now() + cfg.maxRecoveryWait;
  while (!finished && cluster.sim().now() < deadline) {
    cluster.sim().runFor(sim::msec(250));
  }
  r.recovered = finished && record.succeeded;
  if (finished) {
    r.detectionDelay = record.detectedAt - r.killTime;
    r.recoveryDuration = record.duration();
  }
  const sim::SimTime recoveryEnd = cluster.sim().now();

  // Post-recovery tail so the timelines show the return to idle.
  cluster.sim().runFor(cfg.settleAfter);
  cluster.stopYcsb();
  sampler.stop();
  lat1.flush();
  lat2.flush();
  r.client1LatencyUs = std::move(lat1.series);
  r.client2LatencyUs = std::move(lat2.series);
  r.client1WorstOpUs = lat1.worstUs;
  r.client2WorstOpUs = lat2.worstUs;

  r.recoveryEndTime = recoveryEnd;
  r.peakCpuPct = r.cpuMeanPct.maxValue();
  r.allKeysRecovered =
      r.recovered && cluster.verifyAllKeysPresent(table, cfg.records);
  r.spans = cluster.journal().spans();
  if (!cfg.metricsDir.empty()) cluster.exportMetrics(cfg.metricsDir);
  return r;
}

}  // namespace rc::core
