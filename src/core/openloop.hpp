#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "load/arrival.hpp"
#include "load/traffic_source.hpp"
#include "obs/slo_tracker.hpp"
#include "ycsb/workload.hpp"

namespace rc::core {

/// One tenant of an open-loop run: a population shape replicated over
/// `sources` client hosts (each host's TrafficSource models
/// shape.users users, so the tenant's modeled population is
/// sources * shape.users), plus the tenant's SLO targets and its policy at
/// the per-tenant dispatch QoS stage (docs/WORKLOADS.md).
struct OpenLoopTenantConfig {
  std::string name = "tenant";
  int sources = 1;
  load::TrafficShape shape;
  obs::SloTarget readSlo;
  obs::SloTarget updateSlo;

  /// Per-node admitted requests/sec cap for this tenant (0 = use weight).
  double qosRatePerSec = 0;
  /// Weight share of OpenLoopConfig::nodeQosRatePerSec when rate == 0.
  double qosWeight = 0;
  double qosBurst = 64;
  bool qosPriority = false;
};

/// Open-loop counterpart of YcsbExperimentConfig: stand up a cluster, load
/// records, run TrafficSources (one per client host) for warmup + measure,
/// report delivered rate, intent-time latency, generator-cost accounting
/// and per-tenant QoS outcomes.
struct OpenLoopConfig {
  int servers = 10;
  int replicationFactor = 0;
  ycsb::WorkloadSpec workload = ycsb::WorkloadSpec::B();
  std::vector<OpenLoopTenantConfig> tenants;

  sim::Duration warmup = sim::seconds(2);
  sim::Duration measure = sim::seconds(8);
  std::uint64_t seed = 42;
  double timeScale = 1.0;  ///< shrink windows (tests / --quick benches)

  /// Generator batching knobs, copied into every TrafficSourceParams.
  sim::Duration batchQuantum = sim::usec(100);
  sim::Duration maxHorizon = sim::msec(1);
  std::size_t maxBatch = 4096;

  /// Per-node capacity split among weight-based tenant policies. The QoS
  /// stage is installed iff some tenant declares a rate or a weight.
  double nodeQosRatePerSec = 0;

  /// When non-empty, run the 1 Hz sampler and export metrics.jsonl etc.
  std::string metricsDir;

  /// Post-construction hook (extra SLO classes, fault plans, ...).
  std::function<void(Cluster&)> clusterHook;
};

struct OpenLoopTenantResult {
  std::string name;
  std::uint64_t modeledUsers = 0;
  double offeredRatePerSec = 0;  ///< mean drawn arrival rate (diurnal mean)
  std::uint64_t opsCompleted = 0;
  std::uint64_t opFailures = 0;
  // QoS bucket outcomes summed over servers (zero when QoS is off).
  std::uint64_t qosOffered = 0;
  std::uint64_t qosAdmitted = 0;
  std::uint64_t qosThrottled = 0;
  std::uint64_t qosEpisodes = 0;
  // Intent-time latency over the whole run (includes open-loop queueing).
  double readMeanUs = 0;
  double readP99Us = 0;
  double readP999Us = 0;
  double updateP99Us = 0;
  double updateP999Us = 0;
};

struct OpenLoopResult {
  std::uint64_t modeledUsers = 0;
  double offeredRatePerSec = 0;   ///< sum of tenant means
  double deliveredOpsPerSec = 0;  ///< completions in the window
  std::uint64_t opsMeasured = 0;
  double measuredSeconds = 0;

  /// Simulator-cost accounting over the measurement window: total events
  /// the heap executed, and the generator side of it (arrivals drawn vs
  /// wakeup events — the o(1)-per-request evidence, whole run).
  std::uint64_t eventsExecuted = 0;
  double eventsPerOp = 0;
  std::uint64_t arrivalsGenerated = 0;
  std::uint64_t generatorWakeups = 0;
  std::uint64_t sourceDropped = 0;

  std::uint64_t opFailures = 0;
  std::uint64_t shedRequests = 0;  ///< CoDel + QoS bounces, all dispatches

  std::vector<OpenLoopTenantResult> tenants;
  std::vector<obs::SloTracker::WindowRow> sloWindows;
  std::uint64_t sloBreachedWindows = 0;
};

/// Builds the cluster (client hosts = sum of tenant sources), declares the
/// tenants' SLO classes, installs the QoS stage when any tenant asks for
/// one, loads records, runs warmup then a measurement window.
OpenLoopResult runOpenLoopExperiment(const OpenLoopConfig& cfg);

}  // namespace rc::core
