#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "client/ramcloud_client.hpp"
#include "coordinator/coordinator.hpp"
#include "load/traffic_source.hpp"
#include "net/network.hpp"
#include "net/rpc.hpp"
#include "node/node.hpp"
#include "obs/event_journal.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metric_registry.hpp"
#include "obs/metrics_exporter.hpp"
#include "obs/slo_tracker.hpp"
#include "obs/stats_sampler.hpp"
#include "obs/time_trace.hpp"
#include "server/backup_service.hpp"
#include "server/dispatch.hpp"
#include "server/master_service.hpp"
#include "sim/simulation.hpp"
#include "ycsb/ycsb_client.hpp"

namespace rc::core {

/// Everything needed to stand up a simulated Grid'5000 deployment:
/// coordinator + N collocated master/backup servers + M client machines.
struct ClusterParams {
  int servers = 10;
  int clients = 10;
  std::uint64_t seed = 42;

  /// Convenience: copied into master.replication.factor at build time.
  int replicationFactor = 0;

  net::TransportParams transport = net::TransportParams::infiniband();
  node::NodeParams serverNode{};  ///< metered (the 40 PDU nodes)
  node::NodeParams clientNode{};  ///< unmetered, plain machines
  server::MasterParams master{};
  server::BackupParams backup{};
  server::DispatchParams dispatch{};
  coordinator::CoordinatorParams coordinator{};
  client::ClientParams client{};
};

class Cluster {
 public:
  explicit Cluster(ClusterParams params);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  struct Server {
    std::unique_ptr<node::Node> node;
    std::unique_ptr<server::Dispatch> dispatch;
    std::unique_ptr<server::MasterService> master;
    std::unique_ptr<server::BackupService> backup;
  };
  struct ClientHost {
    std::unique_ptr<node::Node> node;
    std::unique_ptr<client::RamCloudClient> rc;
    std::unique_ptr<ycsb::YcsbClient> ycsb;
    /// Open-loop population source (configureOpenLoop); a host runs either
    /// the closed-loop YCSB process or a TrafficSource, not both.
    std::unique_ptr<load::TrafficSource> traffic;
  };

  sim::Simulation& sim() { return sim_; }
  net::Network& network() { return net_; }
  net::RpcSystem& rpc() { return rpc_; }
  coordinator::Coordinator& coord() { return *coord_; }
  const ClusterParams& params() const { return params_; }
  const server::ServiceDirectory& directory() const { return directory_; }

  // ----- observability

  /// Cluster-wide metric registry: every node/dispatch/master/backup
  /// registers its counters and gauges here under "node<N>.*" paths, plus
  /// cluster-level aggregates under "cluster.*".
  obs::MetricRegistry& metrics() { return metrics_; }
  const obs::MetricRegistry& metrics() const { return metrics_; }

  /// Per-RPC time trace shared by every client and master.
  obs::TimeTrace& timeTrace() { return trace_; }
  const obs::TimeTrace& timeTrace() const { return trace_; }

  /// Cluster-wide event journal: recovery/migration/cleaner phase spans
  /// with cross-node causality and per-span energy (see docs/TRACING.md).
  obs::EventJournal& journal() { return journal_; }
  const obs::EventJournal& journal() const { return journal_; }

  /// Windowed SLO tracker (docs/SLO.md). Declare tenant classes on it
  /// before configureYcsb; a breached window arms the flight recorder.
  obs::SloTracker& sloTracker() { return slo_; }
  const obs::SloTracker& sloTracker() const { return slo_; }

  /// Always-on ring of fine-grained pipeline stamps, dumped to
  /// flight.jsonl by exportMetrics only when armed (SLO breach or fault).
  obs::FlightRecorder& flightRecorder() { return flight_; }
  const obs::FlightRecorder& flightRecorder() const { return flight_; }

  /// Start the 1 Hz registry sampler (same tick cadence as the PDUs; call
  /// it alongside startPduSampling so the series align). Idempotent.
  void startStatsSampling();
  const obs::StatsSampler* sampler() const { return sampler_.get(); }

  /// Dump metrics.jsonl + series.csv (registry state, sampler series,
  /// per-node PDU watt traces, time-trace histograms + ring) plus
  /// events.jsonl (the journal's span tree) into `dir`. When the SLO
  /// tracker has declared classes, also slo.jsonl (closing any in-progress
  /// windows first); when the flight recorder was armed, flight.jsonl.
  bool exportMetrics(const std::string& dir);

  int serverCount() const { return static_cast<int>(servers_.size()); }
  int clientCount() const { return static_cast<int>(clients_.size()); }
  Server& server(int idx) { return servers_[static_cast<std::size_t>(idx)]; }
  ClientHost& clientHost(int idx) {
    return clients_[static_cast<std::size_t>(idx)];
  }
  node::NodeId serverNodeId(int idx) const { return 1 + idx; }
  node::NodeId clientNodeId(int idx) const {
    return 1 + params_.servers + idx;
  }
  bool serverAlive(int idx) const {
    return servers_[static_cast<std::size_t>(idx)].node->processRunning();
  }
  int aliveServerCount() const;

  // ----- setup

  std::uint64_t createTable(const std::string& name, int serverSpan = -1);

  /// Event-free load phase: `records` keys [0, records) of `valueBytes`
  /// each, routed by the tablet map, replicas installed per placement.
  void bulkLoad(std::uint64_t tableId, std::uint64_t records,
                std::uint32_t valueBytes);

  void startPduSampling();

  /// Stop every node's PDU sampler (final fractional window included), so
  /// the sampled traces reconcile exactly with the component integrals.
  /// exportMetrics calls this; explicit calls are idempotent.
  void stopPduSampling();

  /// Toggle the per-op energy ledger on every node (and the network's NIC
  /// charge hook). Off removes the hooks entirely — the A/B pair behind
  /// `bench_selfperf --energy-overhead`. Power, timing and results are
  /// identical either way; only attribution detail is lost.
  void setEnergyMetering(bool on);
  bool energyMetering() const { return energyMetering_; }

  // ----- YCSB run phase

  /// `perClient` (optional) tweaks the i-th client's params after the
  /// common copy — fig13's mixed-tenant runs assign tenants/throttles per
  /// client through it. Every client is attached to the SLO tracker; only
  /// those whose tenant classes are declared actually record.
  void configureYcsb(
      std::uint64_t tableId, const ycsb::WorkloadSpec& spec,
      const ycsb::YcsbClientParams& clientParams,
      const std::function<void(int, ycsb::YcsbClientParams&)>& perClient = {});
  void startYcsb();
  void stopYcsb();
  bool allYcsbDone() const;

  // ----- open-loop run phase (docs/WORKLOADS.md)

  /// Replace client host i's closed-loop process with an open-loop
  /// TrafficSource per sources[i] (hosts beyond the list stay idle). Each
  /// source gets a splitmix-forked RNG keyed on (cluster seed, host index)
  /// and a disjoint insert key base; all are attached to the SLO tracker.
  void configureOpenLoop(std::uint64_t tableId, const ycsb::WorkloadSpec& spec,
                         const std::vector<load::TrafficSourceParams>& sources);
  void startTraffic();
  void stopTraffic();

  /// Install the per-tenant dispatch QoS stage on every server: buckets +
  /// per-node "node<N>.dispatch.qos.*" counters + cluster aggregates
  /// "cluster.qos.<name>.*" + a journal event per throttle episode.
  void configureQos(const server::QosParams& qos);

  /// Generator accounting summed over traffic sources (o(1)-batching
  /// evidence: wakeups should be far below arrivals at high rates).
  std::uint64_t totalArrivalsGenerated() const;
  std::uint64_t totalGeneratorWakeups() const;
  std::uint64_t totalSourceDropped() const;
  /// Sum of one named qos counter ("offered"/"admitted"/"throttled"/
  /// "episodes") for a policy name, across servers.
  std::uint64_t qosCounter(const std::string& policy,
                           const std::string& which) const;

  std::uint64_t totalOpsCompleted() const;
  std::uint64_t totalOpFailures() const;
  std::uint64_t totalRpcTimeouts() const;
  /// Client-side RPC re-issues summed over all clients (net.rpc.retries.*).
  std::uint64_t totalRpcRetries() const;
  /// Requests bounced with kOverloaded, summed over all dispatch stages
  /// (docs/OVERLOAD.md).
  std::uint64_t totalShedRequests() const;
  /// kOverloaded bounces observed client-side (net.rpc.overloaded.total).
  std::uint64_t totalOverloadedBounces() const;
  /// Servers currently in shedding state (exemplar brownout is engaged
  /// whenever this is nonzero).
  int sheddingServers() const { return sheddingServers_; }

  // ----- failure injection

  void crashServer(int idx);
  int pickRandomServerIndex();

  // ----- cluster resizing (SS IX)

  /// Migrate one tablet to another server (by index). `done(ok)` fires
  /// once the coordinator flipped the map.
  void migrateTablet(const server::Tablet& tablet, int destIdx,
                     std::function<void(bool)> done);

  /// Move every tablet off server `idx`, spreading them round-robin over
  /// the other active servers; `done(ok)` when the server is empty.
  void drainServer(int idx, std::function<void(bool)> done);

  /// Standby a *drained* server: deregister, unbind, suspend the machine.
  /// Returns false if it still owns tablets.
  bool suspendServer(int idx);

  /// Wake a suspended server and re-enlist it (empty; the caller
  /// rebalances tablets onto it, e.g. via the Autoscaler).
  void resumeServer(int idx);

  bool serverSuspended(int idx) const {
    return servers_[static_cast<std::size_t>(idx)].node->suspended();
  }
  int activeServerCount() const;

  // ----- verification helpers (tests)

  /// Every key in [0, records) readable from its current owner's index?
  bool verifyAllKeysPresent(std::uint64_t tableId, std::uint64_t records,
                            std::uint64_t* firstMissing = nullptr) const;

  /// The server currently owning a key per the coordinator's map.
  server::ServerId ownerOfKey(std::uint64_t tableId,
                              std::uint64_t keyId) const;

 private:
  void registerClusterMetrics();
  void installEnergyCharge();
  bool writeEnergyJsonl(const std::string& path) const;

  ClusterParams params_;
  sim::Simulation sim_;
  net::Network net_;
  net::RpcSystem rpc_;
  server::ServiceDirectory directory_;
  obs::MetricRegistry metrics_;
  obs::TimeTrace trace_;
  obs::EventJournal journal_;
  obs::FlightRecorder flight_;
  obs::SloTracker slo_;
  std::unique_ptr<obs::StatsSampler> sampler_;
  /// Fixed per-node energy origins for the journal's energy probe.
  std::unordered_map<int, node::Node::PowerSnapshot> energyBaselines_;
  bool energyMetering_ = true;
  int sheddingServers_ = 0;

  std::unique_ptr<node::Node> coordNode_;
  std::unique_ptr<coordinator::Coordinator> coord_;
  std::vector<Server> servers_;
  std::vector<ClientHost> clients_;
};

}  // namespace rc::core
