#pragma once

#include <array>
#include <cstdint>
#include <string>

#include <functional>
#include <vector>

#include "core/cluster.hpp"
#include "obs/slo_tracker.hpp"
#include "power/energy_model.hpp"
#include "power/power_model.hpp"
#include "ycsb/workload.hpp"

namespace rc::core {

/// One steady-state YCSB measurement (the methodology of paper §§IV-VI):
/// load records, run closed-loop clients, measure a window after warmup.
///
/// The paper fixes request *counts* (10 M or 100 K per client) and lets the
/// run take as long as it takes; since throughput is stationary in a closed
/// loop, we measure a fixed time window instead and report energies scaled
/// to the paper's nominal request counts (see EXPERIMENTS.md).
struct YcsbExperimentConfig {
  int servers = 10;
  int clients = 10;
  int replicationFactor = 0;
  ycsb::WorkloadSpec workload = ycsb::WorkloadSpec::C();

  sim::Duration warmup = sim::seconds(2);
  sim::Duration measure = sim::seconds(8);

  double throttleOpsPerSec = 0;  ///< per-client (Fig. 13)
  sim::Duration clientOverheadPerOp = sim::usec(26);

  std::uint64_t seed = 42;

  /// Shrink the measurement window (tests / --quick benches).
  double timeScale = 1.0;

  /// Transactional YCSB variant (docs/TRANSACTIONS.md): updates become
  /// minitransaction read-modify-writes and `transferProportion` of ops
  /// are two-key transfers over a small account pool placed above the
  /// record range (so plain YCSB writes never tear a transfer pair).
  bool transactional = false;
  double transferProportion = 0.05;
  std::uint64_t transferAccounts = 12;

  /// When non-empty, start the 1 Hz stats sampler alongside the PDUs and
  /// dump metrics.jsonl + series.csv into this directory after the run.
  std::string metricsDir;

  // ----- SLO attribution (docs/SLO.md)

  /// Tenant name for the whole client fleet ("" = SLO tracking off).
  /// Declares "<tenant>/read" and "<tenant>/update" classes with the
  /// targets below before configureYcsb.
  std::string tenant;
  obs::SloTarget readSlo;
  obs::SloTarget updateSlo;

  /// Post-construction hook on the cluster (declare extra SLO classes,
  /// arm fault injectors, ...). Runs before bulkLoad.
  std::function<void(Cluster&)> clusterHook;

  /// Per-client params tweak, forwarded to Cluster::configureYcsb
  /// (fig13's mixed-tenant assignment).
  std::function<void(int, ycsb::YcsbClientParams&)> perClientParams;
};

struct YcsbExperimentResult {
  double throughputOpsPerSec = 0;

  double meanPowerPerServerW = 0;  ///< time-mean of per-node watts
  double clusterPowerW = 0;        ///< sum over server nodes
  double meanCpuPct = 0;           ///< across nodes, mean over window
  double minCpuPct = 0;            ///< min over nodes of per-node mean
  double maxCpuPct = 0;

  double opsPerJoule = 0;         ///< throughput / cluster watts (Fig. 2)
  double opsPerJoulePerNode = 0;  ///< throughput / per-node watts (Fig. 8)

  /// Joules the component model charged to the server fleet over the
  /// measurement window, total and decomposed (cpu/dram/nic/disk/platform
  /// in power::Component order). clusterPowerW == clusterEnergyJ / window.
  double clusterEnergyJ = 0;
  std::array<double, power::kComponentCount> componentEnergyJ{};
  double joulesPerOp = 0;  ///< clusterEnergyJ / opsMeasured

  double readMeanLatencyUs = 0;
  double updateMeanLatencyUs = 0;
  double readP99Us = 0;
  double updateP99Us = 0;

  /// Per-stage RPC latency breakdown from the cluster TimeTrace (whole
  /// run): where an RPC's time goes — dispatch queueing vs. worker service
  /// vs. replication/log-sync wait (Finding 3's contention, made visible).
  double dispatchWaitMeanUs = 0;
  double dispatchWaitP99Us = 0;
  double workerServiceMeanUs = 0;
  double workerServiceP99Us = 0;
  double replicationWaitMeanUs = 0;
  double replicationWaitP99Us = 0;

  std::uint64_t opsMeasured = 0;
  std::uint64_t opFailures = 0;
  std::uint64_t rpcTimeouts = 0;
  /// Client-side RPC re-issues (timeouts, retriable server statuses). With
  /// exactly-once tracking on, retries of already-applied writes are
  /// suppressed server-side rather than re-executed.
  std::uint64_t rpcRetries = 0;
  double measuredSeconds = 0;

  /// The run "crashed" in the paper's sense: clients saw failed operations
  /// / excessive timeouts (Fig. 6a's missing 10-server points).
  bool crashed = false;

  /// Minitransaction outcome breakdown over the whole run (cluster.tx.*
  /// counters, summed across masters; zero unless cfg.transactional or a
  /// clusterHook issued transactions).
  std::uint64_t txPrepares = 0;
  std::uint64_t txCommits = 0;
  std::uint64_t txAborts = 0;
  std::uint64_t txConflicts = 0;
  std::uint64_t txOrphansResolved = 0;
  std::uint64_t txTransfers = 0;      ///< committed two-key transfers
  std::uint64_t txClientAborted = 0;  ///< tx ops clients saw abort cleanly
  std::uint64_t txClientUnknown = 0;  ///< outcomes left to orphan resolution

  /// SLO attribution results (populated when cfg declared any class):
  /// every closed window row, plus the breach count across classes.
  std::vector<obs::SloTracker::WindowRow> sloWindows;
  std::uint64_t sloBreachedWindows = 0;

  /// Total energy the paper would have measured for a run serving
  /// `totalRequests` at this throughput and power (Figs. 4b / 6b).
  double energyForRequestsJ(std::uint64_t totalRequests) const {
    if (throughputOpsPerSec <= 0) return 0;
    return static_cast<double>(totalRequests) / throughputOpsPerSec *
           clusterPowerW;
  }
};

/// Builds a cluster from the config, loads `workload.recordCount` records,
/// runs the closed loop and returns windowed metrics.
YcsbExperimentResult runYcsbExperiment(const YcsbExperimentConfig& cfg);

/// Convenience used by Table I: per-node CPU% for a given client count
/// without any of the result plumbing.
struct CpuUsageRow {
  double avg = 0;
  double min = 0;
  double max = 0;
};

}  // namespace rc::core
