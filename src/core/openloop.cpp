#include "core/openloop.hpp"

#include <algorithm>

namespace rc::core {

OpenLoopResult runOpenLoopExperiment(const OpenLoopConfig& cfg) {
  // One client host per traffic source; tenant t occupies the contiguous
  // host block [starts[t], starts[t] + tenants[t].sources).
  int totalSources = 0;
  std::vector<int> starts;
  for (const OpenLoopTenantConfig& t : cfg.tenants) {
    starts.push_back(totalSources);
    totalSources += std::max(1, t.sources);
  }

  ClusterParams cp;
  cp.servers = cfg.servers;
  cp.clients = std::max(1, totalSources);
  cp.seed = cfg.seed;
  cp.replicationFactor = cfg.replicationFactor;

  Cluster cluster(cp);

  // SLO classes first: their dense ids become the RPC tenant tags the QoS
  // stage keys on (tag = class id + 1; docs/SLO.md, docs/WORKLOADS.md).
  server::QosParams qos;
  qos.nodeRatePerSec = cfg.nodeQosRatePerSec;
  for (const OpenLoopTenantConfig& t : cfg.tenants) {
    cluster.sloTracker().declareClass(t.name + "/read", t.readSlo);
    cluster.sloTracker().declareClass(t.name + "/update", t.updateSlo);
    if (t.qosRatePerSec > 0 || t.qosWeight > 0) {
      qos.enabled = true;
      server::QosTenantPolicy p;
      p.name = t.name;
      p.tags = {cluster.sloTracker().classId(t.name + "/read") + 1,
                cluster.sloTracker().classId(t.name + "/update") + 1};
      p.ratePerSec = t.qosRatePerSec;
      p.weight = t.qosWeight;
      p.burst = t.qosBurst;
      p.priority = t.qosPriority;
      qos.tenants.push_back(std::move(p));
    }
  }
  if (qos.enabled) cluster.configureQos(qos);
  if (cfg.clusterHook) cfg.clusterHook(cluster);

  const std::uint64_t table = cluster.createTable("usertable");
  cluster.bulkLoad(table, cfg.workload.recordCount, cfg.workload.valueBytes);
  cluster.startPduSampling();
  if (!cfg.metricsDir.empty()) cluster.startStatsSampling();

  std::vector<load::TrafficSourceParams> sources;
  sources.reserve(static_cast<std::size_t>(totalSources));
  for (const OpenLoopTenantConfig& t : cfg.tenants) {
    for (int s = 0; s < std::max(1, t.sources); ++s) {
      load::TrafficSourceParams p;
      p.shape = t.shape;
      p.batchQuantum = cfg.batchQuantum;
      p.maxHorizon = cfg.maxHorizon;
      p.maxBatch = cfg.maxBatch;
      p.tenant = t.name;
      sources.push_back(std::move(p));
    }
  }
  cluster.configureOpenLoop(table, cfg.workload, sources);
  cluster.startTraffic();

  const sim::Duration warmup = static_cast<sim::Duration>(
      static_cast<double>(cfg.warmup) * cfg.timeScale);
  const sim::Duration measure = std::max<sim::Duration>(
      sim::msec(500), static_cast<sim::Duration>(
                          static_cast<double>(cfg.measure) * cfg.timeScale));

  cluster.sim().runFor(warmup);

  const sim::SimTime t0 = cluster.sim().now();
  const std::uint64_t ops0 = cluster.totalOpsCompleted();
  const std::uint64_t ev0 = cluster.sim().eventsExecuted();

  cluster.sim().runFor(measure);

  const sim::SimTime t1 = cluster.sim().now();
  const std::uint64_t ops1 = cluster.totalOpsCompleted();
  const std::uint64_t ev1 = cluster.sim().eventsExecuted();
  cluster.stopTraffic();

  OpenLoopResult r;
  r.measuredSeconds = sim::toSeconds(t1 - t0);
  r.opsMeasured = ops1 - ops0;
  r.deliveredOpsPerSec =
      r.measuredSeconds > 0
          ? static_cast<double>(r.opsMeasured) / r.measuredSeconds
          : 0;
  r.eventsExecuted = ev1 - ev0;
  r.eventsPerOp = r.opsMeasured > 0 ? static_cast<double>(r.eventsExecuted) /
                                          static_cast<double>(r.opsMeasured)
                                    : 0;
  r.arrivalsGenerated = cluster.totalArrivalsGenerated();
  r.generatorWakeups = cluster.totalGeneratorWakeups();
  r.sourceDropped = cluster.totalSourceDropped();
  r.opFailures = cluster.totalOpFailures();
  r.shedRequests = cluster.totalShedRequests();

  for (std::size_t ti = 0; ti < cfg.tenants.size(); ++ti) {
    const OpenLoopTenantConfig& t = cfg.tenants[ti];
    OpenLoopTenantResult row;
    row.name = t.name;
    const int n = std::max(1, t.sources);
    row.modeledUsers =
        static_cast<std::uint64_t>(n) * t.shape.users;
    row.offeredRatePerSec =
        static_cast<double>(n) * t.shape.baseRate() * t.shape.diurnal.mean();
    sim::Histogram reads;
    sim::Histogram updates;
    for (int s = 0; s < n; ++s) {
      const auto* src = cluster.clientHost(starts[ti] + s).traffic.get();
      if (src == nullptr) continue;
      row.opsCompleted += src->stats().opsCompleted;
      row.opFailures += src->stats().failures;
      reads.merge(src->stats().readLatency);
      updates.merge(src->stats().updateLatency);
    }
    row.readMeanUs = reads.mean() / 1e3;
    row.readP99Us = sim::toMicros(reads.percentile(0.99));
    row.readP999Us = sim::toMicros(reads.percentile(0.999));
    row.updateP99Us = sim::toMicros(updates.percentile(0.99));
    row.updateP999Us = sim::toMicros(updates.percentile(0.999));
    row.qosOffered = cluster.qosCounter(t.name, "offered");
    row.qosAdmitted = cluster.qosCounter(t.name, "admitted");
    row.qosThrottled = cluster.qosCounter(t.name, "throttled");
    row.qosEpisodes = cluster.qosCounter(t.name, "episodes");
    r.modeledUsers += row.modeledUsers;
    r.offeredRatePerSec += row.offeredRatePerSec;
    r.tenants.push_back(std::move(row));
  }

  if (cluster.sloTracker().enabled()) {
    cluster.sloTracker().finish();
    r.sloWindows = cluster.sloTracker().rows();
    r.sloBreachedWindows = cluster.sloTracker().breachedWindows();
  }

  if (!cfg.metricsDir.empty()) cluster.exportMetrics(cfg.metricsDir);
  return r;
}

}  // namespace rc::core
