#include "core/autoscaler.hpp"

#include <algorithm>
#include <map>

namespace rc::core {

Autoscaler::Autoscaler(Cluster& cluster, AutoscalerParams params)
    : cluster_(cluster), params_(params) {
  snaps_.resize(static_cast<std::size_t>(cluster_.serverCount()));
}

Autoscaler::~Autoscaler() = default;

void Autoscaler::start() {
  if (task_) return;
  for (int i = 0; i < cluster_.serverCount(); ++i) {
    snaps_[static_cast<std::size_t>(i)] =
        cluster_.server(i).node->snapshotCpu();
  }
  task_ = std::make_unique<sim::PeriodicTask>(
      cluster_.sim(), params_.interval,
      [this](sim::SimTime now) { tick(now); });
}

void Autoscaler::stop() { task_.reset(); }

void Autoscaler::tick(sim::SimTime now) {
  // Mean CPU across *active* servers over the last interval.
  double cpuSum = 0;
  int active = 0;
  for (int i = 0; i < cluster_.serverCount(); ++i) {
    auto& nd = *cluster_.server(i).node;
    const auto snap = snaps_[static_cast<std::size_t>(i)];
    snaps_[static_cast<std::size_t>(i)] = nd.snapshotCpu();
    if (!cluster_.serverAlive(i)) continue;
    cpuSum += nd.meanUtilisationSince(snap, now);
    ++active;
  }
  if (active == 0) return;
  const double meanCpu = cpuSum / active;
  activeTrace_.add(now, active);
  cpuTrace_.add(now, 100.0 * meanCpu);

  if (busy_) return;  // one resize at a time

  if (meanCpu > params_.highWaterCpu) {
    coldTicks_ = 0;
    if (++hotTicks_ >= params_.confirmTicks) {
      hotTicks_ = 0;
      scaleUp();
    }
  } else if (meanCpu < params_.lowWaterCpu) {
    hotTicks_ = 0;
    if (++coldTicks_ >= params_.confirmTicks &&
        active > params_.minActive) {
      coldTicks_ = 0;
      scaleDown();
    }
  } else {
    hotTicks_ = 0;
    coldTicks_ = 0;
  }
}

void Autoscaler::scaleDown() {
  // Drain the active server owning the fewest tablets (cheapest to move).
  int victim = -1;
  std::size_t fewest = ~std::size_t{0};
  for (int i = 0; i < cluster_.serverCount(); ++i) {
    if (!cluster_.serverAlive(i)) continue;
    const auto n = cluster_.coord()
                       .tabletMap()
                       .tabletsOwnedBy(cluster_.serverNodeId(i))
                       .size();
    if (n < fewest) {
      fewest = n;
      victim = i;
    }
  }
  if (victim < 0) return;
  busy_ = true;
  cluster_.drainServer(victim, [this, victim](bool ok) {
    if (ok && cluster_.suspendServer(victim)) ++scaleDowns_;
    busy_ = false;
  });
}

void Autoscaler::scaleUp() {
  int target = -1;
  for (int i = 0; i < cluster_.serverCount(); ++i) {
    if (cluster_.serverSuspended(i)) {
      target = i;
      break;
    }
  }
  if (target < 0) return;  // nothing in standby
  busy_ = true;
  ++scaleUps_;
  cluster_.resumeServer(target);
  rebalanceOnto(target);
}

void Autoscaler::rebalanceOnto(int idx) {
  // Move tablets from the most-loaded owners until `idx` holds a fair
  // share.
  const auto& map = cluster_.coord().tabletMap();
  std::map<server::ServerId, std::vector<server::Tablet>> byOwner;
  std::size_t total = 0;
  for (const auto& e : map.entries()) {
    byOwner[e.tablet.owner].push_back(e.tablet);
    ++total;
  }
  const int active = cluster_.activeServerCount();
  const std::size_t fairShare =
      active > 0 ? std::max<std::size_t>(1, total / static_cast<std::size_t>(
                                                      active))
                 : 1;

  std::vector<server::Tablet> toMove;
  const node::NodeId dest = cluster_.serverNodeId(idx);
  std::size_t planned = byOwner[dest].size();
  // Greedy: repeatedly take one tablet from the current largest owner.
  while (planned < fairShare) {
    server::ServerId richest = node::kInvalidNode;
    std::size_t most = 0;
    for (const auto& [owner, tablets] : byOwner) {
      if (owner == dest) continue;
      if (tablets.size() > most) {
        most = tablets.size();
        richest = owner;
      }
    }
    if (richest == node::kInvalidNode || most <= 1) break;
    toMove.push_back(byOwner[richest].back());
    byOwner[richest].pop_back();
    ++planned;
  }
  if (toMove.empty()) {
    busy_ = false;
    return;
  }
  auto pending = std::make_shared<int>(static_cast<int>(toMove.size()));
  for (const auto& t : toMove) {
    cluster_.migrateTablet(t, idx, [this, pending](bool) {
      if (--*pending == 0) busy_ = false;
    });
  }
}

}  // namespace rc::core
