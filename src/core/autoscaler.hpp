#pragma once

#include <memory>
#include <vector>

#include "core/cluster.hpp"
#include "sim/stats.hpp"

namespace rc::core {

/// Policy knobs for the coordinator-level resizing loop the paper's SS IX
/// proposes ("a smart approach ... at the coordinator level, which can
/// decide whether to add or remove nodes depending on the workload",
/// pointing at Sierra / Rabbit).
struct AutoscalerParams {
  sim::Duration interval = sim::seconds(2);
  /// Scale up when mean CPU of active servers exceeds this...
  double highWaterCpu = 0.80;
  /// ...and down when it falls below this.
  double lowWaterCpu = 0.42;
  /// Never drain below this many active servers (durability needs
  /// replication targets: keep >= replicationFactor + 1).
  int minActive = 3;
  /// Consecutive intervals beyond a watermark before acting (hysteresis).
  int confirmTicks = 2;
};

/// Watches cluster load and resizes it: drains + suspends servers when
/// demand is low, wakes + rebalances onto them when it is high. One
/// action at a time; tablet migration is the mechanism.
class Autoscaler {
 public:
  Autoscaler(Cluster& cluster, AutoscalerParams params);
  ~Autoscaler();

  void start();
  void stop();

  int scaleUps() const { return scaleUps_; }
  int scaleDowns() const { return scaleDowns_; }
  bool actionInProgress() const { return busy_; }

  /// 1-point-per-interval trace of the active server count (for plots).
  const sim::TimeSeries& activeTrace() const { return activeTrace_; }
  /// Mean CPU of active servers per interval.
  const sim::TimeSeries& cpuTrace() const { return cpuTrace_; }

 private:
  void tick(sim::SimTime now);
  void scaleDown();
  void scaleUp();
  void rebalanceOnto(int idx);

  Cluster& cluster_;
  AutoscalerParams params_;
  std::unique_ptr<sim::PeriodicTask> task_;
  std::vector<node::CpuScheduler::Snapshot> snaps_;
  bool busy_ = false;
  int hotTicks_ = 0;
  int coldTicks_ = 0;
  int scaleUps_ = 0;
  int scaleDowns_ = 0;
  sim::TimeSeries activeTrace_;
  sim::TimeSeries cpuTrace_;
};

}  // namespace rc::core
