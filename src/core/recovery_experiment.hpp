#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "sim/stats.hpp"

namespace rc::core {

/// Crash-recovery experiment (paper §VII): load a cluster, kill a server at
/// a fixed time, observe recovery time, CPU/power/disk timelines and the
/// latency seen by live clients.
struct RecoveryExperimentConfig {
  int servers = 10;
  int replicationFactor = 4;
  std::uint64_t records = 10'000'000;  ///< paper: 10 M x 1 KB = ~9.7 GB
  std::uint32_t valueBytes = 1000;
  sim::Duration killAt = sim::seconds(60);
  int killIndex = -1;  ///< -1 = seeded-random pick (the paper's protocol)
  std::uint64_t seed = 42;

  /// Fig. 10's two probing clients: client 1 only requests the killed
  /// server's keys, client 2 the rest.
  bool probeClients = false;

  sim::Duration maxRecoveryWait = sim::seconds(600);
  sim::Duration settleAfter = sim::seconds(10);  ///< post-recovery tail

  /// Optional smaller log-segment size (the §IX segment-size ablation);
  /// 0 keeps the 8 MB default.
  std::uint64_t segmentBytes = 0;

  /// Non-empty: export metrics.jsonl / series.csv / events.jsonl into this
  /// directory at the end of the run (1 Hz sampling runs from t=0).
  std::string metricsDir;

  /// Bucket width of the CPU/power/disk/latency timelines. Down-scaled
  /// runs (bench --quick) recover in well under a second; 1 s buckets
  /// average the replay burst away, so those runs sample finer.
  sim::Duration sampleEvery = sim::seconds(1);
};

struct RecoveryExperimentResult {
  bool recovered = false;
  sim::Duration detectionDelay = 0;    ///< kill -> coordinator declares dead
  sim::Duration recoveryDuration = 0;  ///< declare-dead -> all partitions up
  double dataRecoveredGB = 0;

  /// Per alive node over [crash detected, recovery finished] — the replay
  /// window itself, excluding the detection-idle prefix.
  double meanPowerDuringRecoveryW = 0;
  double peakCpuPct = 0;
  double energyPerNodeDuringRecoveryJ = 0;

  bool allKeysRecovered = false;

  // Timelines across the whole run, one point per cfg.sampleEvery bucket
  // (aggregate over alive servers; disk series are rate-normalized).
  sim::TimeSeries cpuMeanPct;     ///< mean CPU % of alive servers
  sim::TimeSeries powerMeanW;     ///< mean watts of alive servers
  sim::TimeSeries diskReadMBps;   ///< aggregated
  sim::TimeSeries diskWriteMBps;  ///< aggregated

  // Fig. 10 probe-client latency timelines (per-bucket mean, us).
  sim::TimeSeries client1LatencyUs;
  sim::TimeSeries client2LatencyUs;
  /// Worst single operation per probe client (client 1's is the
  /// availability gap: ~detection + recovery time).
  double client1WorstOpUs = 0;
  double client2WorstOpUs = 0;

  sim::SimTime killTime = 0;
  sim::SimTime recoveryEndTime = 0;
  int victimNodeId = 0;  ///< node id of the killed server

  /// Copy of the cluster's event journal at the end of the run (the
  /// recovery's cross-node span tree; benches run shape checks on it).
  std::vector<obs::EventJournal::Span> spans;
};

RecoveryExperimentResult runRecoveryExperiment(
    const RecoveryExperimentConfig& cfg);

}  // namespace rc::core
