#include "obs/metric_registry.hpp"

#include <cassert>

namespace rc::obs {

HistogramSummary summarizeHistogram(const sim::Histogram& h) {
  HistogramSummary s;
  s.count = h.count();
  s.meanUs = h.mean() / 1e3;
  s.p50Us = sim::toMicros(h.percentile(0.5));
  s.p90Us = sim::toMicros(h.percentile(0.9));
  s.p99Us = sim::toMicros(h.percentile(0.99));
  s.maxUs = sim::toMicros(h.max());
  return s;
}

const char* kindName(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

MetricRegistry::Entry& MetricRegistry::upsert(const std::string& name,
                                              MetricKind kind,
                                              const std::string& unit) {
  auto it = index_.find(name);
  if (it != index_.end()) {
    Entry& e = *entries_[it->second];
    assert(e.info.kind == kind && "metric re-registered with a different kind");
    return e;
  }
  auto e = std::make_unique<Entry>();
  e->info = MetricInfo{name, kind, unit};
  entries_.push_back(std::move(e));
  index_[name] = entries_.size() - 1;
  return *entries_.back();
}

Counter& MetricRegistry::counter(const std::string& name,
                                 const std::string& unit) {
  Entry& e = upsert(name, MetricKind::kCounter, unit);
  if (!e.ownedCounter) {
    e.ownedCounter = std::make_unique<Counter>();
    Counter* c = e.ownedCounter.get();
    e.read = [c] { return static_cast<double>(c->value()); };
  }
  return *e.ownedCounter;
}

Gauge& MetricRegistry::gauge(const std::string& name,
                             const std::string& unit) {
  Entry& e = upsert(name, MetricKind::kGauge, unit);
  if (!e.ownedGauge) {
    e.ownedGauge = std::make_unique<Gauge>();
    Gauge* g = e.ownedGauge.get();
    e.read = [g] { return g->value(); };
  }
  return *e.ownedGauge;
}

sim::Histogram& MetricRegistry::histogram(const std::string& name,
                                          const std::string& unit) {
  Entry& e = upsert(name, MetricKind::kHistogram, unit);
  if (!e.ownedHistogram) {
    e.ownedHistogram = std::make_unique<sim::Histogram>();
    sim::Histogram* h = e.ownedHistogram.get();
    e.readHist = [h]() -> const sim::Histogram* { return h; };
  }
  return *e.ownedHistogram;
}

void MetricRegistry::probeCounter(const std::string& name,
                                  const std::string& unit,
                                  std::function<double()> fn) {
  Entry& e = upsert(name, MetricKind::kCounter, unit);
  e.read = std::move(fn);
}

void MetricRegistry::probeGauge(const std::string& name,
                                const std::string& unit,
                                std::function<double()> fn) {
  Entry& e = upsert(name, MetricKind::kGauge, unit);
  e.read = std::move(fn);
}

void MetricRegistry::probeHistogram(
    const std::string& name, const std::string& unit,
    std::function<const sim::Histogram*()> fn) {
  Entry& e = upsert(name, MetricKind::kHistogram, unit);
  e.readHist = std::move(fn);
}

bool MetricRegistry::has(const std::string& name) const {
  return index_.count(name) > 0;
}

const MetricInfo* MetricRegistry::info(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? nullptr : &entries_[it->second]->info;
}

void MetricRegistry::forEach(
    const std::function<void(const MetricInfo&)>& fn) const {
  for (const auto& e : entries_) fn(e->info);
}

const MetricInfo& MetricRegistry::infoAt(std::size_t idx) const {
  return entries_[idx]->info;
}

double MetricRegistry::valueAt(std::size_t idx) const {
  const Entry& e = *entries_[idx];
  return e.read ? e.read() : 0;
}

double MetricRegistry::value(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return 0;
  const Entry& e = *entries_[it->second];
  return e.read ? e.read() : 0;
}

const sim::Histogram* MetricRegistry::histogramAt(
    const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return nullptr;
  const Entry& e = *entries_[it->second];
  return e.readHist ? e.readHist() : nullptr;
}

MetricRegistry::Snapshot MetricRegistry::snapshotValues() const {
  Snapshot s;
  for (const auto& e : entries_) {
    if (e->read) s[e->info.name] = e->read();
  }
  return s;
}

double MetricRegistry::delta(const Snapshot& before, const Snapshot& after,
                             const std::string& name) {
  const auto b = before.find(name);
  const auto a = after.find(name);
  const double bv = b == before.end() ? 0 : b->second;
  const double av = a == after.end() ? 0 : a->second;
  return av - bv;
}

double MetricRegistry::rate(const Snapshot& before, const Snapshot& after,
                            const std::string& name, sim::SimTime from,
                            sim::SimTime to) {
  if (to <= from) return 0;
  return delta(before, after, name) / sim::toSeconds(to - from);
}

}  // namespace rc::obs
