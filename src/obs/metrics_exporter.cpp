#include "obs/metrics_exporter.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace rc::obs {

namespace {

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

void writeHistogramLine(std::ostream& os, const std::string& name,
                        const std::string& unit, const sim::Histogram& h) {
  const HistogramSummary s = summarizeHistogram(h);
  os << "{\"type\":\"histogram\",\"name\":\"" << jsonEscape(name)
     << "\",\"unit\":\"" << jsonEscape(unit) << "\",\"count\":" << s.count
     << ",\"mean\":" << s.meanUs << ",\"p50\":" << s.p50Us
     << ",\"p90\":" << s.p90Us << ",\"p99\":" << s.p99Us
     << ",\"max\":" << s.maxUs << "}\n";
}

void writeSeriesLines(std::ostream& os, const std::string& name,
                      const sim::TimeSeries& ts) {
  for (const auto& p : ts.points()) {
    os << "{\"type\":\"point\",\"name\":\"" << jsonEscape(name)
       << "\",\"t\":" << sim::toSeconds(p.time) << ",\"value\":" << p.value
       << "}\n";
  }
}

/// Minimal field extraction for the exporter's own (flat, one-line) output.
bool findString(const std::string& line, const std::string& key,
                std::string* out) {
  const std::string pat = "\"" + key + "\":\"";
  const auto at = line.find(pat);
  if (at == std::string::npos) return false;
  std::string r;
  for (std::size_t i = at + pat.size(); i < line.size(); ++i) {
    if (line[i] == '\\' && i + 1 < line.size()) {
      r.push_back(line[++i]);
    } else if (line[i] == '"') {
      *out = r;
      return true;
    } else {
      r.push_back(line[i]);
    }
  }
  return false;
}

bool findNumber(const std::string& line, const std::string& key,
                double* out) {
  const std::string pat = "\"" + key + "\":";
  const auto at = line.find(pat);
  if (at == std::string::npos) return false;
  *out = std::strtod(line.c_str() + at + pat.size(), nullptr);
  return true;
}

}  // namespace

void MetricsExporter::addSeries(const std::string& name,
                                const sim::TimeSeries* ts) {
  if (ts != nullptr) extraSeries_.emplace_back(name, ts);
}

bool MetricsExporter::writeJsonl(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  registry_.forEach([&](const MetricInfo& info) {
    if (info.kind == MetricKind::kHistogram) {
      const sim::Histogram* h = registry_.histogramAt(info.name);
      static const sim::Histogram kEmpty;
      writeHistogramLine(os, info.name, info.unit, h != nullptr ? *h : kEmpty);
      return;
    }
    os << "{\"type\":\"" << kindName(info.kind) << "\",\"name\":\""
       << jsonEscape(info.name) << "\",\"unit\":\"" << jsonEscape(info.unit)
       << "\",\"value\":" << registry_.value(info.name) << "}\n";
  });
  if (sampler_ != nullptr) {
    for (const auto& [name, ts] : sampler_->series()) {
      writeSeriesLines(os, name, ts);
    }
  }
  for (const auto& [name, ts] : extraSeries_) {
    writeSeriesLines(os, name, *ts);
  }
  if (trace_ != nullptr) {
    for (const auto& ev : trace_->recentEvents()) {
      os << "{\"type\":\"trace\",\"t\":" << sim::toSeconds(ev.at)
         << ",\"span\":" << ev.span << ",\"name\":\""
         << TimeTrace::stageName(ev.stage)
         << "\",\"value\":" << sim::toMicros(ev.elapsed) << "}\n";
    }
  }
  return static_cast<bool>(os);
}

bool MetricsExporter::writeSeriesCsv(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  if (sampler_ == nullptr || sampler_->series().empty()) {
    os << "time_s\n";
    return static_cast<bool>(os);
  }
  const auto& all = sampler_->series();
  os << "time_s";
  for (const auto& [name, ts] : all) os << "," << name;
  os << "\n";
  // Every sampler series shares the same tick times by construction; rows
  // are bounded by the shortest series for safety (a metric registered
  // mid-run starts late).
  std::size_t rows = all.front().second.size();
  for (const auto& [name, ts] : all) rows = std::min(rows, ts.size());
  const auto& clock = all.front().second.points();
  const std::size_t skewFront = all.front().second.size() - rows;
  for (std::size_t i = 0; i < rows; ++i) {
    os << sim::toSeconds(clock[skewFront + i].time);
    for (const auto& [name, ts] : all) {
      const auto& pts = ts.points();
      os << "," << pts[pts.size() - rows + i].value;
    }
    os << "\n";
  }
  return static_cast<bool>(os);
}

bool MetricsExporter::exportRunDir(const std::string& dir) const {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return false;
  const std::filesystem::path base(dir);
  return writeJsonl((base / "metrics.jsonl").string()) &&
         writeSeriesCsv((base / "series.csv").string());
}

std::vector<MetricsExporter::Record> MetricsExporter::readJsonl(
    const std::string& path) {
  std::vector<Record> out;
  std::ifstream is(path);
  for (std::string line; std::getline(is, line);) {
    if (line.empty()) continue;
    Record r;
    if (!findString(line, "type", &r.type)) continue;
    findString(line, "name", &r.name);
    findString(line, "unit", &r.unit);
    findNumber(line, "value", &r.value);
    findNumber(line, "t", &r.t);
    double n = 0;
    if (findNumber(line, "count", &n)) {
      r.count = static_cast<std::uint64_t>(n);
    }
    findNumber(line, "mean", &r.mean);
    findNumber(line, "p50", &r.p50);
    findNumber(line, "p90", &r.p90);
    findNumber(line, "p99", &r.p99);
    findNumber(line, "max", &r.max);
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace rc::obs
