#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "obs/metric_registry.hpp"
#include "obs/time_trace.hpp"
#include "sim/simulation.hpp"
#include "sim/stats.hpp"

namespace rc::obs {

/// Declared latency objectives for one tenant/op-class. A zero duration
/// means "no target at that quantile". Burn rate is measured against the
/// implied error budget: a p99 target allows 1% of requests over it, a
/// p999 target allows 0.1%; burn = (actual over-target fraction) / budget,
/// so burn >= 1 in a window means the budget is blown — the window is
/// *breached* (docs/SLO.md).
struct SloTarget {
  sim::Duration p99 = 0;
  sim::Duration p999 = 0;
};

/// Windowed tail-latency tracker: sliding fixed-length windows of
/// streaming quantiles keyed by (tenant/op-class, serving node).
///
/// Each class keeps one fixed-size log-bucket digest (sim::LatencyDigest)
/// per window plus one per serving node, so record() is O(1) and windows
/// merge/rotate without retaining samples. Windows are aligned to sim-time
/// epoch 0 (window k covers [k*W, (k+1)*W)) and rotate lazily on the next
/// record — an idle class costs nothing. The k slowest requests of every
/// window retain their full TimeTrace::SpanDetail (exemplar capture), so a
/// p999 outlier decomposes into network / dispatch-wait / worker /
/// replication-wait with exact queue depths.
///
/// Everything exported (slo.jsonl, metric probes) is deterministic: same
/// seed, same plan -> byte-identical output (the PR 5 determinism guard
/// extends to this file).
class SloTracker {
 public:
  struct NodeQuantiles {
    int node = -1;
    std::uint64_t count = 0;
    sim::Duration p50 = 0;
    sim::Duration p99 = 0;
    sim::Duration p999 = 0;
  };

  struct Exemplar {
    std::uint64_t span = 0;
    int node = -1;
    sim::Duration latency = 0;
    TimeTrace::SpanDetail detail;
  };

  /// One closed window of one class, emitted on rotation.
  struct WindowRow {
    std::uint64_t window = 0;  ///< covers [window*W, (window+1)*W)
    std::string cls;
    SloTarget target;
    std::uint64_t count = 0;
    sim::Duration p50 = 0;
    sim::Duration p99 = 0;
    sim::Duration p999 = 0;
    std::uint64_t overP99 = 0;   ///< requests above target.p99
    std::uint64_t overP999 = 0;  ///< requests above target.p999
    double burnRate99 = 0;
    double burnRate999 = 0;
    double burnRate = 0;  ///< max of the applicable component rates
    bool breached = false;
    /// Energy attributed to the class while the window was open (0 when no
    /// energy probe is wired): joules, joules/op, ops/joule.
    double joules = 0;
    double joulesPerOp = 0;
    double opsPerJoule = 0;
    std::vector<NodeQuantiles> perNode;
    std::vector<Exemplar> exemplars;  ///< slowest first
  };

  explicit SloTracker(sim::Simulation& sim,
                      sim::Duration window = sim::seconds(1),
                      int exemplarsPerWindow = 3);

  SloTracker(const SloTracker&) = delete;
  SloTracker& operator=(const SloTracker&) = delete;

  /// Declare a tenant/op-class (e.g. "tenantA/read") with its targets;
  /// returns its dense class id. Re-declaring a name updates the targets
  /// and returns the existing id. Metric probes for the class appear under
  /// the prefix given to registerMetrics (before or after — both work).
  int declareClass(const std::string& name, SloTarget target);

  /// Dense id for a declared class, -1 if unknown. Clients resolve ids
  /// once at start so the per-op record path never hashes strings.
  int classId(const std::string& name) const;

  int classCount() const { return static_cast<int>(classes_.size()); }
  const std::string& className(int id) const {
    return classes_[static_cast<std::size_t>(id)].name;
  }
  std::uint64_t classRecorded(int id) const {
    return classes_[static_cast<std::size_t>(id)].recorded;
  }

  /// `probe(classId)` returns cumulative joules charged to the class's
  /// tenant across the cluster; window energy is the probe delta between
  /// window open and rotation. Null (default) leaves the energy columns 0.
  using EnergyProbe = std::function<double(int)>;
  void setEnergyProbe(EnergyProbe probe) { energyProbe_ = std::move(probe); }

  bool enabled() const { return !classes_.empty(); }
  sim::Duration windowLength() const { return window_; }
  std::uint64_t windowIndexAt(sim::SimTime t) const {
    return static_cast<std::uint64_t>(t) / static_cast<std::uint64_t>(window_);
  }

  /// O(1) record of one completed request: class quantiles, per-node
  /// quantiles, over-target counts, exemplar candidacy. `detail` may be
  /// null (exemplars then carry no stage decomposition). classId < 0 is a
  /// no-op so untracked callers need no branch of their own.
  void record(int classId, int node, std::uint64_t span, sim::Duration latency,
              const TimeTrace::SpanDetail* detail);

  /// Rotate out every in-progress window (call once at end of run, before
  /// exporting). Idempotent for a quiescent tracker.
  void finish();

  /// In-progress window of every class, for live display (rcperf top).
  struct LiveClass {
    std::string cls;
    std::uint64_t count = 0;
    sim::Duration p50 = 0;
    sim::Duration p99 = 0;
    sim::Duration p999 = 0;
    double burnRate = 0;
    std::vector<NodeQuantiles> perNode;
  };
  std::vector<LiveClass> liveSnapshot() const;

  const std::vector<WindowRow>& rows() const { return rows_; }
  std::uint64_t windowsEmitted() const { return rows_.size(); }
  std::uint64_t breachedWindows() const { return breachedTotal_; }
  std::uint64_t recorded() const { return recorded_; }

  /// Fired on every breached window at rotation time (the cluster arms the
  /// flight recorder from here).
  std::function<void(const WindowRow&)> onBreach;

  /// Exemplar brownout (docs/OVERLOAD.md degradation ladder): while set, no
  /// new exemplars are retained — quantiles, over-target counts and window
  /// rows are unaffected. The cluster engages it while any server is
  /// shedding.
  void setExemplarBrownout(bool on) {
    if (on && !exemplarBrownout_) ++brownoutEngagements_;
    exemplarBrownout_ = on;
  }
  bool exemplarBrownout() const { return exemplarBrownout_; }
  std::uint64_t brownoutEngagements() const { return brownoutEngagements_; }

  /// slo.jsonl: slo_window / slo_node / exemplar / exemplar_stage lines,
  /// sorted by (window, class) so double runs are byte-identical.
  std::string toJsonl() const;
  bool writeJsonl(const std::string& path) const;

  void registerMetrics(MetricRegistry& reg, const std::string& prefix);

 private:
  struct Window {
    bool open = false;
    std::uint64_t index = 0;
    sim::LatencyDigest digest;
    /// Indexed by node id + 1 (slot 0 = "unknown node"), grown on demand;
    /// a slot with count() == 0 never saw an op. Flat storage keeps the
    /// per-op record() free of tree/hash lookups, and ascending-index
    /// iteration gives the same stable output order std::map did.
    std::vector<sim::LatencyDigest> perNode;
    std::uint64_t overP99 = 0;
    std::uint64_t overP999 = 0;
    double energyJ0 = 0;  ///< energy probe reading when the window opened
    std::vector<Exemplar> exemplars;  ///< sorted slowest-first, size <= k
  };

  struct ClassState {
    std::string name;
    SloTarget target;
    Window cur;
    std::uint64_t recorded = 0;
    std::uint64_t breached = 0;
    double lastBurn = 0;  ///< burn rate of the most recently closed window
  };

  void rotate(ClassState& cs);
  void registerClassMetrics(int id);

  sim::Simulation& sim_;
  sim::Duration window_;
  int exemplarsPerWindow_;
  EnergyProbe energyProbe_;
  std::vector<ClassState> classes_;
  std::map<std::string, int> byName_;
  std::vector<WindowRow> rows_;
  std::uint64_t breachedTotal_ = 0;
  std::uint64_t recorded_ = 0;
  bool exemplarBrownout_ = false;
  std::uint64_t brownoutEngagements_ = 0;
  MetricRegistry* reg_ = nullptr;
  std::string prefix_;
};

}  // namespace rc::obs
