#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/metric_registry.hpp"
#include "sim/simulation.hpp"
#include "sim/stats.hpp"

namespace rc::obs {

/// Walks the registry once per simulated second — the same 1 Hz ticks the
/// PDU samplers use — so CPU, throughput, disk and power all land in
/// aligned TimeSeries (the paper's correlated-trace methodology).
///
/// Counters become per-second window rates (series named "<metric>.rate");
/// gauges are sampled verbatim (series named "<metric>"). The metric set is
/// captured at tick time, so metrics registered after construction (e.g.
/// YCSB clients created later) are picked up automatically.
class StatsSampler {
 public:
  StatsSampler(sim::Simulation& sim, const MetricRegistry& registry,
               sim::Duration interval = sim::seconds(1));

  StatsSampler(const StatsSampler&) = delete;
  StatsSampler& operator=(const StatsSampler&) = delete;

  void stop();
  bool running() const { return task_ && task_->active(); }

  sim::Duration interval() const { return interval_; }
  std::uint64_t ticks() const { return ticks_; }

  /// Series in first-seen order; every series shares the same tick times.
  const std::vector<std::pair<std::string, sim::TimeSeries>>& series() const {
    return series_;
  }
  const sim::TimeSeries* find(const std::string& name) const;

 private:
  /// Per-metric sampling state, cached at wiring time so the 1 Hz tick
  /// reads values by index — no per-tick snapshot map, no name lookups,
  /// no string concatenation on the data path.
  struct Slot {
    MetricKind kind = MetricKind::kGauge;
    std::string seriesName;           ///< "<metric>.rate" for counters
    std::size_t seriesIdx = kUnset;   ///< created on first sampled point
    double prev = 0;                  ///< counter value at the last tick
  };
  static constexpr std::size_t kUnset = static_cast<std::size_t>(-1);

  void tick(sim::SimTime now);

  /// Append slots for metrics registered since the last call. `primePrev`
  /// seeds counter baselines from current values (construction time); at
  /// tick time new counters baseline from 0, matching snapshot-delta
  /// semantics for metrics that appeared mid-run.
  void syncSlots(bool primePrev);

  sim::Simulation& sim_;
  const MetricRegistry& registry_;
  sim::Duration interval_;
  sim::SimTime lastTick_;
  std::uint64_t ticks_ = 0;
  std::vector<Slot> slots_;
  std::vector<std::pair<std::string, sim::TimeSeries>> series_;
  std::unique_ptr<sim::PeriodicTask> task_;
};

}  // namespace rc::obs
