#include "obs/event_journal.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>

namespace rc::obs {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

bool findString(const std::string& line, const std::string& key,
                std::string* out) {
  const std::string pat = "\"" + key + "\":\"";
  const auto at = line.find(pat);
  if (at == std::string::npos) return false;
  std::string r;
  for (std::size_t i = at + pat.size(); i < line.size(); ++i) {
    if (line[i] == '\\' && i + 1 < line.size()) {
      r.push_back(line[++i]);
    } else if (line[i] == '"') {
      *out = r;
      return true;
    } else {
      r.push_back(line[i]);
    }
  }
  return false;
}

bool findNumber(const std::string& line, const std::string& key, double* out) {
  const std::string pat = "\"" + key + "\":";
  const auto at = line.find(pat);
  if (at == std::string::npos) return false;
  *out = std::strtod(line.c_str() + at + pat.size(), nullptr);
  return true;
}

}  // namespace

EventJournal::SpanId EventJournal::beginSpan(const std::string& name, int node,
                                             SpanId parent, std::uint64_t ctx) {
  const SpanId id = nextSpan_++;
  Span s;
  s.id = id;
  s.parent = parent;
  s.name = name;
  s.node = node;
  s.ctx = ctx;
  s.begin = sim_.now();
  index_[id] = spans_.size();
  spans_.push_back(std::move(s));
  openEnergy0_[id] = energyProbe_ ? energyProbe_(node) : EnergyBreakdown{};
  ++started_;
  return id;
}

EventJournal::SpanId EventJournal::event(const std::string& name, int node,
                                         SpanId parent, std::uint64_t ctx) {
  const SpanId id = beginSpan(name, node, parent, ctx);
  endSpan(id);
  return id;
}

void EventJournal::addBytes(SpanId id, std::uint64_t bytes) {
  auto it = index_.find(id);
  if (it != index_.end()) spans_[it->second].bytes += bytes;
}

void EventJournal::addCount(SpanId id, std::uint64_t n) {
  auto it = index_.find(id);
  if (it != index_.end()) spans_[it->second].count += n;
}

void EventJournal::linkSpan(SpanId id, SpanId parent, std::uint64_t ctx) {
  auto it = index_.find(id);
  if (it == index_.end()) return;
  spans_[it->second].parent = parent;
  spans_[it->second].ctx = ctx;
}

void EventJournal::close(SpanId id, bool abandoned) {
  auto e0 = openEnergy0_.find(id);
  if (e0 == openEnergy0_.end()) return;  // unknown or already closed
  auto it = index_.find(id);
  Span& s = spans_[it->second];
  s.end = sim_.now();
  s.open = false;
  s.abandoned = abandoned;
  if (energyProbe_) {
    const EnergyBreakdown now = energyProbe_(s.node);
    const EnergyBreakdown& then = e0->second;
    s.cpuJ = now.cpu - then.cpu;
    s.dramJ = now.dram - then.dram;
    s.nicJ = now.nic - then.nic;
    s.diskJ = now.disk - then.disk;
    s.joules = now.total() - then.total();
  }
  openEnergy0_.erase(e0);
  if (abandoned) {
    ++abandoned_;
  } else {
    ++completed_;
  }
}

void EventJournal::endSpan(SpanId id) { close(id, /*abandoned=*/false); }

void EventJournal::abandonSpan(SpanId id) { close(id, /*abandoned=*/true); }

void EventJournal::abandonNode(int node) {
  // Collect first: close() mutates openEnergy0_.
  std::vector<SpanId> toClose;
  for (const auto& [id, j0] : openEnergy0_) {
    if (spans_[index_.at(id)].node == node) toClose.push_back(id);
  }
  // Deterministic order regardless of hash-map iteration.
  std::sort(toClose.begin(), toClose.end());
  for (SpanId id : toClose) close(id, /*abandoned=*/true);
}

const EventJournal::Span* EventJournal::span(SpanId id) const {
  auto it = index_.find(id);
  return it == index_.end() ? nullptr : &spans_[it->second];
}

std::vector<const EventJournal::Span*> EventJournal::spansNamed(
    const std::string& name) const {
  std::vector<const Span*> out;
  for (const Span& s : spans_) {
    if (s.name == name) out.push_back(&s);
  }
  return out;
}

std::vector<const EventJournal::Span*> EventJournal::spansInCtx(
    std::uint64_t ctx) const {
  std::vector<const Span*> out;
  for (const Span& s : spans_) {
    if (s.ctx == ctx) out.push_back(&s);
  }
  return out;
}

double EventJournal::joulesForPhase(const std::string& name) const {
  double j = 0;
  for (const Span& s : spans_) {
    if (!s.open && (name.empty() || s.name == name)) j += s.joules;
  }
  return j;
}

void EventJournal::registerMetrics(MetricRegistry& reg,
                                   const std::string& prefix) {
  reg.probeCounter(prefix + ".spans_started", "ops",
                   [this] { return static_cast<double>(started_); });
  reg.probeCounter(prefix + ".spans_completed", "ops",
                   [this] { return static_cast<double>(completed_); });
  reg.probeCounter(prefix + ".spans_abandoned", "ops",
                   [this] { return static_cast<double>(abandoned_); });
  reg.probeGauge(prefix + ".open_spans", "items",
                 [this] { return static_cast<double>(openSpans()); });
}

bool EventJournal::writeJsonl(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  char t0[32];
  char t1[32];
  char joules[32];
  char comp[4][32];
  for (const Span& s : spans_) {
    // Nanosecond-resolution seconds keep interval queries exact on re-read.
    std::snprintf(t0, sizeof t0, "%.9f", sim::toSeconds(s.begin));
    std::snprintf(t1, sizeof t1, "%.9f",
                  sim::toSeconds(s.open ? s.begin : s.end));
    std::snprintf(joules, sizeof joules, "%.6f", s.joules);
    std::snprintf(comp[0], sizeof comp[0], "%.6f", s.cpuJ);
    std::snprintf(comp[1], sizeof comp[1], "%.6f", s.dramJ);
    std::snprintf(comp[2], sizeof comp[2], "%.6f", s.nicJ);
    std::snprintf(comp[3], sizeof comp[3], "%.6f", s.diskJ);
    os << "{\"type\":\"span\",\"id\":" << s.id << ",\"parent\":" << s.parent
       << ",\"name\":\"" << escape(s.name) << "\",\"node\":" << s.node
       << ",\"ctx\":" << s.ctx << ",\"t0\":" << t0 << ",\"t1\":" << t1
       << ",\"open\":" << (s.open ? 1 : 0)
       << ",\"abandoned\":" << (s.abandoned ? 1 : 0) << ",\"joules\":" << joules
       << ",\"cpu_j\":" << comp[0] << ",\"dram_j\":" << comp[1]
       << ",\"nic_j\":" << comp[2] << ",\"disk_j\":" << comp[3]
       << ",\"bytes\":" << s.bytes << ",\"count\":" << s.count << "}\n";
  }
  return static_cast<bool>(os);
}

std::vector<EventJournal::Span> EventJournal::readJsonl(
    const std::string& path) {
  std::vector<Span> out;
  std::ifstream is(path);
  for (std::string line; std::getline(is, line);) {
    if (line.empty()) continue;
    std::string type;
    if (!findString(line, "type", &type) || type != "span") continue;
    Span s;
    double n = 0;
    if (findNumber(line, "id", &n)) s.id = static_cast<SpanId>(n);
    if (findNumber(line, "parent", &n)) s.parent = static_cast<SpanId>(n);
    findString(line, "name", &s.name);
    if (findNumber(line, "node", &n)) s.node = static_cast<int>(n);
    if (findNumber(line, "ctx", &n)) s.ctx = static_cast<std::uint64_t>(n);
    if (findNumber(line, "t0", &n)) s.begin = sim::secondsF(n);
    if (findNumber(line, "t1", &n)) s.end = sim::secondsF(n);
    if (findNumber(line, "open", &n)) s.open = n != 0;
    if (findNumber(line, "abandoned", &n)) s.abandoned = n != 0;
    findNumber(line, "joules", &s.joules);
    findNumber(line, "cpu_j", &s.cpuJ);
    findNumber(line, "dram_j", &s.dramJ);
    findNumber(line, "nic_j", &s.nicJ);
    findNumber(line, "disk_j", &s.diskJ);
    if (findNumber(line, "bytes", &n)) s.bytes = static_cast<std::uint64_t>(n);
    if (findNumber(line, "count", &n)) s.count = static_cast<std::uint64_t>(n);
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace rc::obs
