#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metric_registry.hpp"
#include "sim/simulation.hpp"

namespace rc::obs {

/// Cluster-wide structured event journal: typed, timestamped spans with
/// node/actor attribution and parent-span causality (the recovery-path
/// counterpart of TimeTrace's per-RPC stages).
///
/// The coordinator, masters and backups open a span when a phase of a
/// recovery / migration / cleaner pass begins on their node and close it
/// when the phase completes, so one crash yields a complete cross-node
/// span tree rooted at the coordinator's "recovery" span. Spans are linked
/// by parent id (causality, which may cross nodes via the RPC that carried
/// the work) and grouped by `ctx` (the recovery id), and annotated with
/// bytes/count payload attributes.
///
/// Energy attribution: when an energy probe is attached (the cluster wires
/// it to Node::componentEnergySince over the per-resource model), every
/// span records the joules spent on its actor node while it was open,
/// decomposed by component (CPU/DRAM/NIC/disk + platform in the total).
/// Because concurrent spans on one node each see full node power, per-span
/// joules answer "what did the node burn during this phase"; the
/// non-overlapping partition of node energy across phases (which must sum
/// to the PDU-integrated total) is computed offline by rcdiag from the
/// span intervals plus the 1 Hz PDU series — see docs/TRACING.md and
/// docs/ENERGY.md.
///
/// Spans left open when their node's process dies are closed deterministically
/// via abandonNode() (flagged `abandoned`) instead of dangling forever.
class EventJournal {
 public:
  using SpanId = std::uint64_t;

  /// Per-component node energy at a probe instant (cumulative joules from
  /// a fixed origin). Mirrors power::Component without an obs -> power
  /// dependency; `total()` includes the platform share.
  struct EnergyBreakdown {
    double cpu = 0;
    double dram = 0;
    double nic = 0;
    double disk = 0;
    double platform = 0;
    double total() const { return cpu + dram + nic + disk + platform; }
  };

  struct Span {
    SpanId id = 0;
    SpanId parent = 0;       ///< 0 = root
    std::string name;        ///< phase, e.g. "replay", "segment_read"
    int node = -1;           ///< actor node id
    std::uint64_t ctx = 0;   ///< grouping context (recovery id), 0 = none
    sim::SimTime begin = 0;
    sim::SimTime end = 0;    ///< valid once closed (== begin for events)
    bool open = true;
    bool abandoned = false;  ///< closed by node crash / phase failure
    double joules = 0;       ///< whole-node energy over [begin, end]
    double cpuJ = 0;         ///< per-component decomposition of `joules`
    double dramJ = 0;        ///< (platform share = joules - sum of these)
    double nicJ = 0;
    double diskJ = 0;
    std::uint64_t bytes = 0;
    std::uint64_t count = 0;

    sim::Duration duration() const { return open ? 0 : end - begin; }
  };

  explicit EventJournal(sim::Simulation& sim) : sim_(sim) {}

  EventJournal(const EventJournal&) = delete;
  EventJournal& operator=(const EventJournal&) = delete;

  /// `probe(node)` returns cumulative per-component joules consumed by
  /// `node` since some fixed origin; span energy is the probe delta
  /// between begin and close.
  using EnergyProbe = std::function<EnergyBreakdown(int)>;
  void setEnergyProbe(EnergyProbe probe) { energyProbe_ = std::move(probe); }

  /// Open a span at now(). Returns its id (never 0).
  SpanId beginSpan(const std::string& name, int node, SpanId parent = 0,
                   std::uint64_t ctx = 0);

  /// Record a zero-duration (instant) event as an already-closed span.
  SpanId event(const std::string& name, int node, SpanId parent = 0,
               std::uint64_t ctx = 0);

  /// Accumulate payload attributes onto an open span (no-op if unknown).
  void addBytes(SpanId id, std::uint64_t bytes);
  void addCount(SpanId id, std::uint64_t n);

  /// Re-parent a span into a tree discovered after it began (e.g. the
  /// failure_detection span opens at the first missed ping, before the
  /// recovery — and its root span — exists). No-op if unknown.
  void linkSpan(SpanId id, SpanId parent, std::uint64_t ctx);

  /// Close the span at now(), attributing energy. No-op if unknown/closed.
  void endSpan(SpanId id);

  /// Close the span flagged `abandoned` (phase failed or actor died).
  void abandonSpan(SpanId id);

  /// Deterministically close every open span of `node` as abandoned —
  /// called when the node's process crashes mid-phase.
  void abandonNode(int node);

  // ----- introspection (tests, rcdiag, benches)

  const std::vector<Span>& spans() const { return spans_; }
  const Span* span(SpanId id) const;
  std::vector<const Span*> spansNamed(const std::string& name) const;
  std::vector<const Span*> spansInCtx(std::uint64_t ctx) const;

  std::size_t openSpans() const { return openEnergy0_.size(); }
  std::uint64_t spansStarted() const { return started_; }
  std::uint64_t spansCompleted() const { return completed_; }
  std::uint64_t spansAbandoned() const { return abandoned_; }

  /// Sum of joules over closed spans matching `name` (all if empty).
  double joulesForPhase(const std::string& name) const;

  /// Counters/gauges under `prefix` (e.g. "cluster.journal").
  void registerMetrics(MetricRegistry& reg, const std::string& prefix);

  // ----- persistence (events.jsonl; schema in docs/TRACING.md)

  bool writeJsonl(const std::string& path) const;
  static std::vector<Span> readJsonl(const std::string& path);

 private:
  void close(SpanId id, bool abandoned);

  sim::Simulation& sim_;
  EnergyProbe energyProbe_;
  std::vector<Span> spans_;                        ///< begin order
  std::unordered_map<SpanId, std::size_t> index_;  ///< id -> spans_ idx
  /// id -> per-component probe reading at begin.
  std::unordered_map<SpanId, EnergyBreakdown> openEnergy0_;
  SpanId nextSpan_ = 1;
  std::uint64_t started_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t abandoned_ = 0;
};

}  // namespace rc::obs
