#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metric_registry.hpp"
#include "sim/time.hpp"

namespace rc::obs {

/// Always-on forensic ring (the "flight recorder"): every fine-grained
/// TimeTrace stamp — pipeline stage, serving node, dispatch queue depth,
/// tenant tag — lands in a fixed-size ring of POD entries at O(1) cost.
/// The ring stays passive until something goes wrong: an SLO breach or an
/// injected fault arms a trigger, and only then does the run dump
/// flight.jsonl (the ring's tail plus the trigger list). Fault-free,
/// breach-free runs write nothing (docs/SLO.md).
///
/// Entries with abandoned=true are a span's retained stage records
/// re-emitted at abandon time (client timeout / server crash): the live
/// ring may have wrapped past the original stamps, but the re-emission
/// keeps the dead RPC's stage decomposition dumpable.
class FlightRecorder {
 public:
  struct Entry {
    sim::SimTime at = 0;
    std::uint64_t span = 0;
    std::uint8_t stage = 0;  ///< TimeTrace::Stage
    bool abandoned = false;
    std::uint16_t tenant = 0;      ///< RpcRequest tenant tag (0 = untagged)
    std::int32_t node = -1;        ///< serving node (-1 = client side)
    std::int32_t queueDepth = -1;  ///< dispatch queue depth (-1 = n/a)
    sim::Duration elapsed = 0;
  };

  struct Trigger {
    sim::SimTime at = 0;
    std::string reason;
  };

  explicit FlightRecorder(std::size_t capacity = 8192);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// O(1): overwrite the oldest slot. Called from TimeTrace::stamp on the
  /// hot path, so it must stay allocation-free.
  void record(const Entry& e) {
    ring_[next_] = e;
    next_ = (next_ + 1) % ring_.size();
    if (count_ < ring_.size()) ++count_;
    ++recorded_;
  }

  /// Arm a dump. Called on an SLO window breach or when the fault injector
  /// fires; the recorder itself stays passive — exporters consult
  /// triggered() to decide whether flight.jsonl is written.
  void trigger(sim::SimTime at, const std::string& reason);

  bool triggered() const { return !triggers_.empty(); }
  const std::vector<Trigger>& triggers() const { return triggers_; }
  std::uint64_t recorded() const { return recorded_; }
  std::size_t capacity() const { return ring_.size(); }

  /// Ring contents, oldest first.
  std::vector<Entry> entries() const;

  /// flight.jsonl: one {"type":"flight_trigger",...} line per trigger,
  /// then one {"type":"flight",...} line per retained entry, oldest first.
  std::string toJsonl() const;
  bool writeJsonl(const std::string& path) const;

  void registerMetrics(MetricRegistry& reg, const std::string& prefix);

 private:
  std::vector<Entry> ring_;
  std::size_t next_ = 0;
  std::size_t count_ = 0;
  std::uint64_t recorded_ = 0;
  std::vector<Trigger> triggers_;
};

}  // namespace rc::obs
