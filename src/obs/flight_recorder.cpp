#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/time_trace.hpp"

namespace rc::obs {

FlightRecorder::FlightRecorder(std::size_t capacity)
    : ring_(std::max<std::size_t>(1, capacity)) {}

void FlightRecorder::trigger(sim::SimTime at, const std::string& reason) {
  triggers_.push_back(Trigger{at, reason});
}

std::vector<FlightRecorder::Entry> FlightRecorder::entries() const {
  std::vector<Entry> out;
  out.reserve(count_);
  const std::size_t start = count_ < ring_.size() ? 0 : next_;
  for (std::size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::string FlightRecorder::toJsonl() const {
  std::ostringstream os;
  char line[320];
  for (const Trigger& t : triggers_) {
    std::snprintf(line, sizeof(line),
                  "{\"type\":\"flight_trigger\",\"t_us\":%.3f,"
                  "\"reason\":\"%s\"}\n",
                  sim::toMicros(t.at), t.reason.c_str());
    os << line;
  }
  for (const Entry& e : entries()) {
    std::snprintf(
        line, sizeof(line),
        "{\"type\":\"flight\",\"t_us\":%.3f,\"span\":%llu,"
        "\"stage\":\"%s\",\"node\":%d,\"depth\":%d,\"tenant\":%u,"
        "\"us\":%.3f,\"abandoned\":%d}\n",
        sim::toMicros(e.at), static_cast<unsigned long long>(e.span),
        TimeTrace::stageName(static_cast<TimeTrace::Stage>(e.stage)), e.node,
        e.queueDepth, static_cast<unsigned>(e.tenant),
        sim::toMicros(e.elapsed), e.abandoned ? 1 : 0);
    os << line;
  }
  return os.str();
}

bool FlightRecorder::writeJsonl(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  os << toJsonl();
  return static_cast<bool>(os);
}

void FlightRecorder::registerMetrics(MetricRegistry& reg,
                                     const std::string& prefix) {
  reg.probeCounter(prefix + ".stamps", "ops", [this] {
    return static_cast<double>(recorded_);
  });
  reg.probeCounter(prefix + ".triggers", "ops", [this] {
    return static_cast<double>(triggers_.size());
  });
}

}  // namespace rc::obs
