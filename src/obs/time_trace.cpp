#include "obs/time_trace.hpp"

#include <algorithm>

#include "obs/flight_recorder.hpp"

namespace rc::obs {

const char* TimeTrace::stageName(Stage s) {
  switch (s) {
    case Stage::kNetworkRequest:
      return "network_request";
    case Stage::kDispatchWait:
      return "dispatch_wait";
    case Stage::kWorkerService:
      return "worker_service";
    case Stage::kReplicationWait:
      return "replication_wait";
    case Stage::kNetworkReply:
      return "network_reply";
    case Stage::kTotal:
      return "total";
  }
  return "unknown";
}

TimeTrace::TimeTrace(sim::Simulation& sim, std::size_t ringCapacity)
    : sim_(sim), ring_(std::max<std::size_t>(1, ringCapacity)) {}

std::uint64_t TimeTrace::beginSpan(std::uint16_t tenant) {
  const std::uint64_t id = nextSpan_++;
  SpanState st;
  st.begin = st.last = sim_.now();
  st.tenant = tenant;
  active_[id] = st;
  ++started_;
  return id;
}

void TimeTrace::record(std::uint64_t span, Stage stage,
                       sim::Duration elapsed) {
  histograms_[static_cast<std::size_t>(stage)].add(elapsed);
  ring_[ringNext_] = Event{sim_.now(), span, stage, elapsed};
  ringNext_ = (ringNext_ + 1) % ring_.size();
  ringCount_ = std::min(ringCount_ + 1, ring_.size());
}

void TimeTrace::stamp(std::uint64_t span, Stage stage,
                      std::int32_t queueDepth, std::int32_t node) {
  auto it = active_.find(span);
  if (it == active_.end()) return;
  SpanState& st = it->second;
  const sim::SimTime now = sim_.now();
  const sim::Duration elapsed = now - st.last;
  record(span, stage, elapsed);
  if (st.numStages < kMaxStagesPerSpan) {
    st.stages[st.numStages++] = StageRec{stage, elapsed, queueDepth, node};
  }
  if (flight_ != nullptr) {
    flight_->record(FlightRecorder::Entry{
        now, span, static_cast<std::uint8_t>(stage), /*abandoned=*/false,
        st.tenant, node, queueDepth, elapsed});
  }
  st.last = now;
}

void TimeTrace::endSpan(std::uint64_t span, SpanDetail* detail) {
  auto it = active_.find(span);
  if (it == active_.end()) return;
  const SpanState& st = it->second;
  const sim::Duration total = sim_.now() - st.begin;
  record(span, Stage::kTotal, total);
  if (detail != nullptr) {
    detail->begin = st.begin;
    detail->total = total;
    detail->tenant = st.tenant;
    detail->numStages = st.numStages;
    detail->stages = st.stages;
  }
  active_.erase(it);
  ++completed_;
}

void TimeTrace::abandonSpan(std::uint64_t span) {
  auto it = active_.find(span);
  if (it == active_.end()) return;
  if (flight_ != nullptr) {
    // The RPC never completed, so its stamps reach no histogram and no
    // exemplar; re-emit the retained records into the flight ring so the
    // dead request's decomposition (with queue depths) survives a dump
    // even when the live ring has wrapped past the original entries.
    const SpanState& st = it->second;
    for (std::uint8_t i = 0; i < st.numStages; ++i) {
      const StageRec& r = st.stages[i];
      flight_->record(FlightRecorder::Entry{
          sim_.now(), span, static_cast<std::uint8_t>(r.stage),
          /*abandoned=*/true, st.tenant, r.node, r.queueDepth, r.elapsed});
    }
  }
  active_.erase(it);
  ++abandoned_;
}

std::vector<TimeTrace::Event> TimeTrace::recentEvents() const {
  std::vector<Event> out;
  out.reserve(ringCount_);
  const std::size_t start =
      ringCount_ < ring_.size() ? 0 : ringNext_;
  for (std::size_t i = 0; i < ringCount_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void TimeTrace::registerMetrics(MetricRegistry& reg,
                                const std::string& prefix) {
  for (std::size_t i = 0; i < kNumStages; ++i) {
    const auto stage = static_cast<Stage>(i);
    reg.probeHistogram(
        prefix + ".stage." + stageName(stage), "us",
        [this, stage]() -> const sim::Histogram* {
          return &stageHistogram(stage);
        });
  }
  reg.probeCounter(prefix + ".spans_started", "ops",
                   [this] { return static_cast<double>(started_); });
  reg.probeCounter(prefix + ".spans_completed", "ops",
                   [this] { return static_cast<double>(completed_); });
  reg.probeCounter(prefix + ".spans_abandoned", "ops",
                   [this] { return static_cast<double>(abandoned_); });
  reg.probeGauge(prefix + ".active_spans", "items",
                 [this] { return static_cast<double>(active_.size()); });
}

}  // namespace rc::obs
