#include "obs/time_trace.hpp"

#include <algorithm>

namespace rc::obs {

const char* TimeTrace::stageName(Stage s) {
  switch (s) {
    case Stage::kNetworkRequest:
      return "network_request";
    case Stage::kDispatchWait:
      return "dispatch_wait";
    case Stage::kWorkerService:
      return "worker_service";
    case Stage::kReplicationWait:
      return "replication_wait";
    case Stage::kNetworkReply:
      return "network_reply";
    case Stage::kTotal:
      return "total";
  }
  return "unknown";
}

TimeTrace::TimeTrace(sim::Simulation& sim, std::size_t ringCapacity)
    : sim_(sim), ring_(std::max<std::size_t>(1, ringCapacity)) {}

std::uint64_t TimeTrace::beginSpan() {
  const std::uint64_t id = nextSpan_++;
  active_[id] = SpanState{sim_.now(), sim_.now()};
  ++started_;
  return id;
}

void TimeTrace::record(std::uint64_t span, Stage stage,
                       sim::Duration elapsed) {
  histograms_[static_cast<std::size_t>(stage)].add(elapsed);
  ring_[ringNext_] = Event{sim_.now(), span, stage, elapsed};
  ringNext_ = (ringNext_ + 1) % ring_.size();
  ringCount_ = std::min(ringCount_ + 1, ring_.size());
}

void TimeTrace::stamp(std::uint64_t span, Stage stage) {
  auto it = active_.find(span);
  if (it == active_.end()) return;
  const sim::SimTime now = sim_.now();
  record(span, stage, now - it->second.last);
  it->second.last = now;
}

void TimeTrace::endSpan(std::uint64_t span) {
  auto it = active_.find(span);
  if (it == active_.end()) return;
  record(span, Stage::kTotal, sim_.now() - it->second.begin);
  active_.erase(it);
  ++completed_;
}

void TimeTrace::abandonSpan(std::uint64_t span) {
  auto it = active_.find(span);
  if (it == active_.end()) return;
  active_.erase(it);
  ++abandoned_;
}

std::vector<TimeTrace::Event> TimeTrace::recentEvents() const {
  std::vector<Event> out;
  out.reserve(ringCount_);
  const std::size_t start =
      ringCount_ < ring_.size() ? 0 : ringNext_;
  for (std::size_t i = 0; i < ringCount_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void TimeTrace::registerMetrics(MetricRegistry& reg,
                                const std::string& prefix) {
  for (std::size_t i = 0; i < kNumStages; ++i) {
    const auto stage = static_cast<Stage>(i);
    reg.probeHistogram(
        prefix + ".stage." + stageName(stage), "us",
        [this, stage]() -> const sim::Histogram* {
          return &stageHistogram(stage);
        });
  }
  reg.probeCounter(prefix + ".spans_started", "ops",
                   [this] { return static_cast<double>(started_); });
  reg.probeCounter(prefix + ".spans_completed", "ops",
                   [this] { return static_cast<double>(completed_); });
  reg.probeCounter(prefix + ".spans_abandoned", "ops",
                   [this] { return static_cast<double>(abandoned_); });
  reg.probeGauge(prefix + ".active_spans", "items",
                 [this] { return static_cast<double>(active_.size()); });
}

}  // namespace rc::obs
