#include "obs/stats_sampler.hpp"

namespace rc::obs {

StatsSampler::StatsSampler(sim::Simulation& sim,
                           const MetricRegistry& registry,
                           sim::Duration interval)
    : sim_(sim),
      registry_(registry),
      interval_(interval),
      lastTick_(sim.now()),
      prev_(registry.snapshotValues()) {
  task_ = std::make_unique<sim::PeriodicTask>(
      sim_, interval_, [this](sim::SimTime now) { tick(now); });
}

void StatsSampler::stop() {
  if (task_) task_->cancel();
}

sim::TimeSeries& StatsSampler::seriesFor(const std::string& name) {
  for (auto& [n, ts] : series_) {
    if (n == name) return ts;
  }
  series_.emplace_back(name, sim::TimeSeries{});
  return series_.back().second;
}

const sim::TimeSeries* StatsSampler::find(const std::string& name) const {
  for (const auto& [n, ts] : series_) {
    if (n == name) return &ts;
  }
  return nullptr;
}

void StatsSampler::tick(sim::SimTime now) {
  const MetricRegistry::Snapshot cur = registry_.snapshotValues();
  registry_.forEach([&](const MetricInfo& info) {
    switch (info.kind) {
      case MetricKind::kCounter:
        seriesFor(info.name + ".rate")
            .add(now, MetricRegistry::rate(prev_, cur, info.name, lastTick_,
                                           now));
        break;
      case MetricKind::kGauge: {
        const auto it = cur.find(info.name);
        seriesFor(info.name).add(now, it == cur.end() ? 0 : it->second);
        break;
      }
      case MetricKind::kHistogram:
        break;  // distributions are exported whole, not sampled
    }
  });
  prev_ = cur;
  lastTick_ = now;
  ++ticks_;
}

}  // namespace rc::obs
