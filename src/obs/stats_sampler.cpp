#include "obs/stats_sampler.hpp"

namespace rc::obs {

StatsSampler::StatsSampler(sim::Simulation& sim,
                           const MetricRegistry& registry,
                           sim::Duration interval)
    : sim_(sim),
      registry_(registry),
      interval_(interval),
      lastTick_(sim.now()) {
  syncSlots(/*primePrev=*/true);
  task_ = std::make_unique<sim::PeriodicTask>(
      sim_, interval_, [this](sim::SimTime now) { tick(now); });
}

void StatsSampler::stop() {
  if (task_) task_->cancel();
}

const sim::TimeSeries* StatsSampler::find(const std::string& name) const {
  for (const auto& [n, ts] : series_) {
    if (n == name) return &ts;
  }
  return nullptr;
}

void StatsSampler::syncSlots(bool primePrev) {
  while (slots_.size() < registry_.size()) {
    const std::size_t i = slots_.size();
    const MetricInfo& info = registry_.infoAt(i);
    Slot s;
    s.kind = info.kind;
    switch (info.kind) {
      case MetricKind::kCounter:
        s.seriesName = info.name + ".rate";
        if (primePrev) s.prev = registry_.valueAt(i);
        break;
      case MetricKind::kGauge:
        s.seriesName = info.name;
        break;
      case MetricKind::kHistogram:
        break;  // distributions are exported whole, not sampled
    }
    slots_.push_back(std::move(s));
  }
}

void StatsSampler::tick(sim::SimTime now) {
  syncSlots(/*primePrev=*/false);
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    Slot& s = slots_[i];
    if (s.kind == MetricKind::kHistogram) continue;
    const double cur = registry_.valueAt(i);
    double sample = cur;
    if (s.kind == MetricKind::kCounter) {
      sample = now <= lastTick_
                   ? 0
                   : (cur - s.prev) / sim::toSeconds(now - lastTick_);
      s.prev = cur;
    }
    if (s.seriesIdx == kUnset) {
      // First sampled point: series appear in the same first-seen order
      // the export format has always used.
      s.seriesIdx = series_.size();
      series_.emplace_back(s.seriesName, sim::TimeSeries{});
    }
    series_[s.seriesIdx].second.add(now, sample);
  }
  lastTick_ = now;
  ++ticks_;
}

}  // namespace rc::obs
