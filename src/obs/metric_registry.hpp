#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace rc::obs {

/// What a registered metric measures. Counters are cumulative and
/// monotonically nondecreasing (the sampler turns them into window rates);
/// gauges are instantaneous readings; histograms are latency distributions
/// in nanoseconds.
enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

const char* kindName(MetricKind k);

/// Cumulative event counter owned by the registry.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Settable instantaneous value owned by the registry.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

/// Export-ready digest of a latency histogram, in microseconds. All
/// percentiles are guaranteed inside [min, max] of the observed samples
/// (a 1-sample histogram reports that sample for every quantile).
struct HistogramSummary {
  std::uint64_t count = 0;
  double meanUs = 0;
  double p50Us = 0;
  double p90Us = 0;
  double p99Us = 0;
  double maxUs = 0;
};

HistogramSummary summarizeHistogram(const sim::Histogram& h);

struct MetricInfo {
  std::string name;  ///< hierarchical dotted path, e.g. "node3.dispatch.queue_depth"
  MetricKind kind = MetricKind::kGauge;
  std::string unit;  ///< "ops", "bytes", "ratio", "watts", "us", "items"
};

/// Cluster-wide metric registry (the repro's RawMetrics equivalent).
///
/// Components register metrics under a hierarchical dotted path at
/// construction time. Two registration styles:
///  - owned: counter()/gauge()/histogram() return a reference the component
///    updates directly (create-or-get by name);
///  - probe: probeCounter()/probeGauge()/probeHistogram() register a callback
///    that reads an existing component statistic, so legacy stats structs
///    plug in without restructuring.
///
/// Enumeration order is insertion order, which is deterministic because
/// cluster construction is.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  Counter& counter(const std::string& name, const std::string& unit);
  Gauge& gauge(const std::string& name, const std::string& unit);
  sim::Histogram& histogram(const std::string& name, const std::string& unit);

  /// `fn` must return the cumulative count so far (monotone nondecreasing).
  void probeCounter(const std::string& name, const std::string& unit,
                    std::function<double()> fn);
  void probeGauge(const std::string& name, const std::string& unit,
                  std::function<double()> fn);
  /// `fn` may return nullptr (treated as an empty histogram).
  void probeHistogram(const std::string& name, const std::string& unit,
                      std::function<const sim::Histogram*()> fn);

  bool has(const std::string& name) const;
  std::size_t size() const { return entries_.size(); }
  const MetricInfo* info(const std::string& name) const;

  /// Visit every metric in registration order.
  void forEach(const std::function<void(const MetricInfo&)>& fn) const;

  /// Indexed access in registration order — lets samplers cache a metric's
  /// position at wiring time and read it each tick without any name lookup.
  const MetricInfo& infoAt(std::size_t idx) const;
  /// Value of the idx-th metric (0 for histograms).
  double valueAt(std::size_t idx) const;

  /// Current value of a counter or gauge (0 if absent or a histogram).
  double value(const std::string& name) const;

  /// Histogram behind `name` (nullptr if absent or not a histogram).
  const sim::Histogram* histogramAt(const std::string& name) const;

  /// Point-in-time values of every counter and gauge. Delta/rate between
  /// two snapshots gives windowed statistics for free.
  using Snapshot = std::map<std::string, double>;
  Snapshot snapshotValues() const;

  static double delta(const Snapshot& before, const Snapshot& after,
                      const std::string& name);
  /// delta / window, guarded: zero-length or inverted windows yield 0.
  static double rate(const Snapshot& before, const Snapshot& after,
                     const std::string& name, sim::SimTime from,
                     sim::SimTime to);

 private:
  struct Entry {
    MetricInfo info;
    std::function<double()> read;                      // counter/gauge
    std::function<const sim::Histogram*()> readHist;   // histogram
    std::unique_ptr<Counter> ownedCounter;
    std::unique_ptr<Gauge> ownedGauge;
    std::unique_ptr<sim::Histogram> ownedHistogram;
  };

  Entry& upsert(const std::string& name, MetricKind kind,
                const std::string& unit);

  std::vector<std::unique_ptr<Entry>> entries_;     // insertion order
  std::map<std::string, std::size_t> index_;        // name -> entries_ idx
};

}  // namespace rc::obs
