#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metric_registry.hpp"
#include "obs/stats_sampler.hpp"
#include "obs/time_trace.hpp"

namespace rc::obs {

/// Dumps a run's observability state into a run directory:
///
///   <dir>/metrics.jsonl — one JSON object per line: every registered
///     counter/gauge ("value"), every histogram (count/mean/p50/p90/p99/max,
///     microseconds), every sampler and extra series point ("point"), and
///     the tail of the TimeTrace ring buffer ("trace").
///   <dir>/series.csv — wide CSV of the sampler's aligned 1 Hz series:
///     time_s, then one column per series, one row per tick.
///
/// readJsonl() parses the exporter's own output back (round-trip tested),
/// so plotting scripts and tests share one format.
class MetricsExporter {
 public:
  explicit MetricsExporter(const MetricRegistry& registry)
      : registry_(registry) {}

  void attachSampler(const StatsSampler* sampler) { sampler_ = sampler; }
  void attachTimeTrace(const TimeTrace* trace) { trace_ = trace; }

  /// Include an externally-owned series (e.g. a PDU trace) in the JSONL
  /// dump. The pointer must outlive the exporter calls.
  void addSeries(const std::string& name, const sim::TimeSeries* ts);

  bool writeJsonl(const std::string& path) const;
  bool writeSeriesCsv(const std::string& path) const;

  /// Create `dir` (and parents) and write metrics.jsonl + series.csv.
  bool exportRunDir(const std::string& dir) const;

  /// One parsed line of metrics.jsonl. `type` is "counter", "gauge",
  /// "histogram", "point" or "trace"; unused fields stay zero/empty.
  struct Record {
    std::string type;
    std::string name;
    std::string unit;
    double value = 0;
    double t = 0;  ///< seconds (points/trace)
    std::uint64_t count = 0;
    double mean = 0, p50 = 0, p90 = 0, p99 = 0, max = 0;  ///< us (histograms)
  };
  static std::vector<Record> readJsonl(const std::string& path);

 private:
  const MetricRegistry& registry_;
  const StatsSampler* sampler_ = nullptr;
  const TimeTrace* trace_ = nullptr;
  std::vector<std::pair<std::string, const sim::TimeSeries*>> extraSeries_;
};

}  // namespace rc::obs
