#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metric_registry.hpp"
#include "sim/simulation.hpp"
#include "sim/stats.hpp"

namespace rc::obs {

class FlightRecorder;

/// Per-RPC time trace (the repro's TimeTrace equivalent).
///
/// A span is opened when the client issues an RPC; each subsequent stamp()
/// charges the time since the previous stamp to one pipeline stage:
///
///   client issue --network--> server --dispatch queue--> worker service
///     --replication / log-sync wait--> reply --network--> client
///
/// Stage durations accumulate into per-stage histograms (Finding 3's
/// dispatch-vs-replication contention becomes directly measurable) and the
/// most recent events land in a fixed-size ring buffer for export.
///
/// Stamping an unknown or already-ended span is a harmless no-op: a server
/// may keep annotating an RPC whose client already timed out, exactly like
/// a late reply on the wire.
class TimeTrace {
 public:
  enum class Stage : std::uint8_t {
    kNetworkRequest,    ///< client issue -> server RPC arrival
    kDispatchWait,      ///< arrival -> dispatch thread hand-off complete
    kWorkerService,     ///< hand-off -> service CPU done (incl. worker wait)
    kReplicationWait,   ///< service done -> replication fan-out / log-sync acked
    kNetworkReply,      ///< reply sent -> client completion
    kTotal,             ///< span begin -> end (client-observed RPC latency)
  };
  static constexpr std::size_t kNumStages =
      static_cast<std::size_t>(Stage::kTotal) + 1;
  static const char* stageName(Stage s);

  struct Event {
    sim::SimTime at = 0;
    std::uint64_t span = 0;
    Stage stage = Stage::kTotal;
    sim::Duration elapsed = 0;
  };

  /// One stamped stage retained inside the span: the stage, the duration
  /// charged to it, and the dispatch queue depth / serving node observed at
  /// stamp time (-1 = not applicable, e.g. client-side stamps).
  struct StageRec {
    Stage stage = Stage::kTotal;
    sim::Duration elapsed = 0;
    std::int32_t queueDepth = -1;
    std::int32_t node = -1;
  };

  /// A span retains up to this many stage records (the read/write pipeline
  /// stamps at most 5; the cap bounds SpanState's size).
  static constexpr std::size_t kMaxStagesPerSpan = 8;

  /// A completed span's full decomposition, filled in by endSpan. The stage
  /// durations sum *exactly* to `total` in integer nanoseconds — every
  /// stamp charges now-since-last-stamp and endSpan fires at the same
  /// instant as the final stamp — which is what lets an exemplar waterfall
  /// account for the whole latency (slo_test asserts < 1 us slack).
  struct SpanDetail {
    sim::SimTime begin = 0;
    sim::Duration total = 0;
    std::uint16_t tenant = 0;
    std::uint8_t numStages = 0;
    std::array<StageRec, kMaxStagesPerSpan> stages{};
  };

  explicit TimeTrace(sim::Simulation& sim, std::size_t ringCapacity = 4096);

  TimeTrace(const TimeTrace&) = delete;
  TimeTrace& operator=(const TimeTrace&) = delete;

  /// Open a span at now(); returns its id (never 0). `tenant` is the
  /// issuing client's tenant/op-class tag, carried into flight-recorder
  /// entries and SpanDetail.
  std::uint64_t beginSpan(std::uint16_t tenant = 0);

  /// Charge now()-since-last-stamp to `stage`. Servers pass the dispatch
  /// queue depth observed on arrival and their node id so tail exemplars
  /// retain exact queue positions; client-side stamps leave both at -1.
  void stamp(std::uint64_t span, Stage stage, std::int32_t queueDepth = -1,
             std::int32_t node = -1);

  /// Close the span, recording Stage::kTotal since beginSpan(). When
  /// `detail` is non-null it receives the span's retained decomposition
  /// (exemplar capture reads it there).
  void endSpan(std::uint64_t span, SpanDetail* detail = nullptr);

  /// Drop the span without recording stage histograms or ring events: the
  /// RPC never completed (its server died and the client timed out), so
  /// quantile surfaces only ever describe RPCs that finished. The stamps
  /// recorded before the abandon are NOT lost, though — they are flushed
  /// into the attached flight recorder (abandoned=true entries), so a
  /// crashed server's exemplars stay decomposable even after the live ring
  /// wrapped past them.
  void abandonSpan(std::uint64_t span);

  /// Attach the always-on flight recorder: every stamp is mirrored into its
  /// ring, and abandoned spans flush their retained stage records there.
  /// nullptr detaches.
  void setFlightRecorder(FlightRecorder* recorder) { flight_ = recorder; }

  bool spanActive(std::uint64_t span) const { return active_.count(span) > 0; }
  std::size_t activeSpans() const { return active_.size(); }
  std::uint64_t spansStarted() const { return started_; }
  std::uint64_t spansCompleted() const { return completed_; }
  std::uint64_t spansAbandoned() const { return abandoned_; }

  const sim::Histogram& stageHistogram(Stage s) const {
    return histograms_[static_cast<std::size_t>(s)];
  }

  /// Ring-buffer contents, oldest first.
  std::vector<Event> recentEvents() const;
  std::size_t ringCapacity() const { return ring_.size(); }

  /// Register per-stage histograms and span counters under `prefix`
  /// (e.g. "cluster.rpc" -> "cluster.rpc.stage.dispatch_wait").
  void registerMetrics(MetricRegistry& reg, const std::string& prefix);

 private:
  struct SpanState {
    sim::SimTime begin = 0;
    sim::SimTime last = 0;
    std::uint16_t tenant = 0;
    std::uint8_t numStages = 0;
    std::array<StageRec, kMaxStagesPerSpan> stages{};
  };

  void record(std::uint64_t span, Stage stage, sim::Duration elapsed);

  sim::Simulation& sim_;
  FlightRecorder* flight_ = nullptr;
  std::vector<Event> ring_;
  std::size_t ringNext_ = 0;
  std::size_t ringCount_ = 0;
  std::uint64_t nextSpan_ = 1;
  std::uint64_t started_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t abandoned_ = 0;
  std::unordered_map<std::uint64_t, SpanState> active_;
  sim::Histogram histograms_[kNumStages];
};

}  // namespace rc::obs
