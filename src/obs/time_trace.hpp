#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metric_registry.hpp"
#include "sim/simulation.hpp"
#include "sim/stats.hpp"

namespace rc::obs {

/// Per-RPC time trace (the repro's TimeTrace equivalent).
///
/// A span is opened when the client issues an RPC; each subsequent stamp()
/// charges the time since the previous stamp to one pipeline stage:
///
///   client issue --network--> server --dispatch queue--> worker service
///     --replication / log-sync wait--> reply --network--> client
///
/// Stage durations accumulate into per-stage histograms (Finding 3's
/// dispatch-vs-replication contention becomes directly measurable) and the
/// most recent events land in a fixed-size ring buffer for export.
///
/// Stamping an unknown or already-ended span is a harmless no-op: a server
/// may keep annotating an RPC whose client already timed out, exactly like
/// a late reply on the wire.
class TimeTrace {
 public:
  enum class Stage : std::uint8_t {
    kNetworkRequest,    ///< client issue -> server RPC arrival
    kDispatchWait,      ///< arrival -> dispatch thread hand-off complete
    kWorkerService,     ///< hand-off -> service CPU done (incl. worker wait)
    kReplicationWait,   ///< service done -> replication fan-out / log-sync acked
    kNetworkReply,      ///< reply sent -> client completion
    kTotal,             ///< span begin -> end (client-observed RPC latency)
  };
  static constexpr std::size_t kNumStages =
      static_cast<std::size_t>(Stage::kTotal) + 1;
  static const char* stageName(Stage s);

  struct Event {
    sim::SimTime at = 0;
    std::uint64_t span = 0;
    Stage stage = Stage::kTotal;
    sim::Duration elapsed = 0;
  };

  explicit TimeTrace(sim::Simulation& sim, std::size_t ringCapacity = 4096);

  TimeTrace(const TimeTrace&) = delete;
  TimeTrace& operator=(const TimeTrace&) = delete;

  /// Open a span at now(); returns its id (never 0).
  std::uint64_t beginSpan();

  /// Charge now()-since-last-stamp to `stage`.
  void stamp(std::uint64_t span, Stage stage);

  /// Close the span, recording Stage::kTotal since beginSpan().
  void endSpan(std::uint64_t span);

  /// Drop the span *without* recording anything: the RPC never completed
  /// (its server died and the client timed out). Stage histograms and the
  /// recent-events ring only ever describe RPCs that finished, so a crash
  /// mid-recovery cannot leak timeout-length garbage into them.
  void abandonSpan(std::uint64_t span);

  bool spanActive(std::uint64_t span) const { return active_.count(span) > 0; }
  std::size_t activeSpans() const { return active_.size(); }
  std::uint64_t spansStarted() const { return started_; }
  std::uint64_t spansCompleted() const { return completed_; }
  std::uint64_t spansAbandoned() const { return abandoned_; }

  const sim::Histogram& stageHistogram(Stage s) const {
    return histograms_[static_cast<std::size_t>(s)];
  }

  /// Ring-buffer contents, oldest first.
  std::vector<Event> recentEvents() const;
  std::size_t ringCapacity() const { return ring_.size(); }

  /// Register per-stage histograms and span counters under `prefix`
  /// (e.g. "cluster.rpc" -> "cluster.rpc.stage.dispatch_wait").
  void registerMetrics(MetricRegistry& reg, const std::string& prefix);

 private:
  struct SpanState {
    sim::SimTime begin = 0;
    sim::SimTime last = 0;
  };

  void record(std::uint64_t span, Stage stage, sim::Duration elapsed);

  sim::Simulation& sim_;
  std::vector<Event> ring_;
  std::size_t ringNext_ = 0;
  std::size_t ringCount_ = 0;
  std::uint64_t nextSpan_ = 1;
  std::uint64_t started_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t abandoned_ = 0;
  std::unordered_map<std::uint64_t, SpanState> active_;
  sim::Histogram histograms_[kNumStages];
};

}  // namespace rc::obs
