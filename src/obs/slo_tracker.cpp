#include "obs/slo_tracker.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace rc::obs {

SloTracker::SloTracker(sim::Simulation& sim, sim::Duration window,
                       int exemplarsPerWindow)
    : sim_(sim),
      window_(std::max<sim::Duration>(1, window)),
      exemplarsPerWindow_(std::max(0, exemplarsPerWindow)) {}

int SloTracker::declareClass(const std::string& name, SloTarget target) {
  auto it = byName_.find(name);
  if (it != byName_.end()) {
    classes_[static_cast<std::size_t>(it->second)].target = target;
    return it->second;
  }
  const int id = static_cast<int>(classes_.size());
  ClassState cs;
  cs.name = name;
  cs.target = target;
  classes_.push_back(std::move(cs));
  byName_[name] = id;
  if (reg_ != nullptr) registerClassMetrics(id);
  return id;
}

int SloTracker::classId(const std::string& name) const {
  auto it = byName_.find(name);
  return it == byName_.end() ? -1 : it->second;
}

void SloTracker::record(int classId, int node, std::uint64_t span,
                        sim::Duration latency,
                        const TimeTrace::SpanDetail* detail) {
  if (classId < 0 || classId >= static_cast<int>(classes_.size())) return;
  ClassState& cs = classes_[static_cast<std::size_t>(classId)];
  const std::uint64_t idx = windowIndexAt(sim_.now());
  Window& w = cs.cur;
  if (w.open && w.index != idx) rotate(cs);
  if (!w.open) {
    w.open = true;
    w.index = idx;
    w.energyJ0 = energyProbe_ ? energyProbe_(classId) : 0;
  }
  w.digest.add(latency);
  const std::size_t slot = static_cast<std::size_t>(node < 0 ? 0 : node + 1);
  if (slot >= w.perNode.size()) w.perNode.resize(slot + 1);
  w.perNode[slot].add(latency);
  if (cs.target.p99 > 0 && latency > cs.target.p99) ++w.overP99;
  if (cs.target.p999 > 0 && latency > cs.target.p999) ++w.overP999;
  ++cs.recorded;
  ++recorded_;

  // Exemplar candidacy: keep the k slowest, sorted slowest-first. Ties
  // break on span id (ascending) so the selection is deterministic.
  // Browned out while any server sheds: SpanDetail copies are pure
  // observability and the first cost cut under overload (docs/OVERLOAD.md).
  if (exemplarsPerWindow_ > 0 && !exemplarBrownout_) {
    auto slower = [](const Exemplar& a, const Exemplar& b) {
      return a.latency != b.latency ? a.latency > b.latency : a.span < b.span;
    };
    const bool full =
        w.exemplars.size() >= static_cast<std::size_t>(exemplarsPerWindow_);
    if (!full || latency > w.exemplars.back().latency ||
        (latency == w.exemplars.back().latency &&
         span < w.exemplars.back().span)) {
      Exemplar e;
      e.span = span;
      e.node = node;
      e.latency = latency;
      if (detail != nullptr) e.detail = *detail;
      w.exemplars.insert(
          std::upper_bound(w.exemplars.begin(), w.exemplars.end(), e, slower),
          std::move(e));
      if (full) w.exemplars.pop_back();
    }
  }
}

void SloTracker::rotate(ClassState& cs) {
  Window& w = cs.cur;
  if (!w.open) return;
  WindowRow row;
  row.window = w.index;
  row.cls = cs.name;
  row.target = cs.target;
  row.count = w.digest.count();
  row.p50 = w.digest.percentile(0.5);
  row.p99 = w.digest.percentile(0.99);
  row.p999 = w.digest.percentile(0.999);
  row.overP99 = w.overP99;
  row.overP999 = w.overP999;
  if (row.count > 0) {
    const double n = static_cast<double>(row.count);
    if (cs.target.p99 > 0) {
      row.burnRate99 = (static_cast<double>(w.overP99) / n) / 0.01;
    }
    if (cs.target.p999 > 0) {
      row.burnRate999 = (static_cast<double>(w.overP999) / n) / 0.001;
    }
  }
  row.burnRate = std::max(row.burnRate99, row.burnRate999);
  row.breached = row.burnRate >= 1.0;
  if (energyProbe_) {
    const int id = static_cast<int>(&cs - classes_.data());
    row.joules = energyProbe_(id) - w.energyJ0;
    if (row.count > 0 && row.joules > 0) {
      row.joulesPerOp = row.joules / static_cast<double>(row.count);
      row.opsPerJoule = static_cast<double>(row.count) / row.joules;
    }
  }
  row.perNode.reserve(w.perNode.size());
  for (std::size_t slot = 0; slot < w.perNode.size(); ++slot) {
    const sim::LatencyDigest& d = w.perNode[slot];
    if (d.count() == 0) continue;
    NodeQuantiles nq;
    nq.node = static_cast<int>(slot) - 1;
    nq.count = d.count();
    nq.p50 = d.percentile(0.5);
    nq.p99 = d.percentile(0.99);
    nq.p999 = d.percentile(0.999);
    row.perNode.push_back(nq);
  }
  row.exemplars = std::move(w.exemplars);
  cs.lastBurn = row.burnRate;
  if (row.breached) {
    ++cs.breached;
    ++breachedTotal_;
  }
  w = Window{};
  rows_.push_back(std::move(row));
  if (rows_.back().breached && onBreach) onBreach(rows_.back());
}

void SloTracker::finish() {
  for (ClassState& cs : classes_) rotate(cs);
}

std::vector<SloTracker::LiveClass> SloTracker::liveSnapshot() const {
  std::vector<LiveClass> out;
  for (const ClassState& cs : classes_) {
    const Window& w = cs.cur;
    LiveClass lc;
    lc.cls = cs.name;
    if (w.open) {
      lc.count = w.digest.count();
      lc.p50 = w.digest.percentile(0.5);
      lc.p99 = w.digest.percentile(0.99);
      lc.p999 = w.digest.percentile(0.999);
      if (lc.count > 0) {
        const double n = static_cast<double>(lc.count);
        double b99 = 0;
        double b999 = 0;
        if (cs.target.p99 > 0) {
          b99 = (static_cast<double>(w.overP99) / n) / 0.01;
        }
        if (cs.target.p999 > 0) {
          b999 = (static_cast<double>(w.overP999) / n) / 0.001;
        }
        lc.burnRate = std::max(b99, b999);
      }
      for (std::size_t slot = 0; slot < w.perNode.size(); ++slot) {
        const sim::LatencyDigest& d = w.perNode[slot];
        if (d.count() == 0) continue;
        NodeQuantiles nq;
        nq.node = static_cast<int>(slot) - 1;
        nq.count = d.count();
        nq.p50 = d.percentile(0.5);
        nq.p99 = d.percentile(0.99);
        nq.p999 = d.percentile(0.999);
        lc.perNode.push_back(nq);
      }
    }
    out.push_back(std::move(lc));
  }
  return out;
}

std::string SloTracker::toJsonl() const {
  // Canonical order regardless of the rotation interleaving: by (window,
  // class). Each (window, class) pair appears at most once.
  std::vector<const WindowRow*> sorted;
  sorted.reserve(rows_.size());
  for (const WindowRow& r : rows_) sorted.push_back(&r);
  std::sort(sorted.begin(), sorted.end(),
            [](const WindowRow* a, const WindowRow* b) {
              return a->window != b->window ? a->window < b->window
                                            : a->cls < b->cls;
            });
  std::ostringstream os;
  char line[512];
  const double wUs = sim::toMicros(window_);
  for (const WindowRow* r : sorted) {
    std::snprintf(
        line, sizeof(line),
        "{\"type\":\"slo_window\",\"window\":%llu,\"t0_us\":%.3f,"
        "\"t1_us\":%.3f,\"class\":\"%s\",\"count\":%llu,\"p50_us\":%.3f,"
        "\"p99_us\":%.3f,\"p999_us\":%.3f,\"target_p99_us\":%.3f,"
        "\"target_p999_us\":%.3f,\"over_p99\":%llu,\"over_p999\":%llu,"
        "\"burn_rate\":%.4f,\"breached\":%d,\"joules\":%.6f,"
        "\"j_per_op\":%.9f,\"ops_per_j\":%.4f}\n",
        static_cast<unsigned long long>(r->window),
        static_cast<double>(r->window) * wUs,
        static_cast<double>(r->window + 1) * wUs, r->cls.c_str(),
        static_cast<unsigned long long>(r->count), sim::toMicros(r->p50),
        sim::toMicros(r->p99), sim::toMicros(r->p999),
        sim::toMicros(r->target.p99), sim::toMicros(r->target.p999),
        static_cast<unsigned long long>(r->overP99),
        static_cast<unsigned long long>(r->overP999), r->burnRate,
        r->breached ? 1 : 0, r->joules, r->joulesPerOp, r->opsPerJoule);
    os << line;
    for (const NodeQuantiles& nq : r->perNode) {
      std::snprintf(line, sizeof(line),
                    "{\"type\":\"slo_node\",\"window\":%llu,\"class\":\"%s\","
                    "\"node\":%d,\"count\":%llu,\"p50_us\":%.3f,"
                    "\"p99_us\":%.3f,\"p999_us\":%.3f}\n",
                    static_cast<unsigned long long>(r->window), r->cls.c_str(),
                    nq.node, static_cast<unsigned long long>(nq.count),
                    sim::toMicros(nq.p50), sim::toMicros(nq.p99),
                    sim::toMicros(nq.p999));
      os << line;
    }
    for (std::size_t rank = 0; rank < r->exemplars.size(); ++rank) {
      const Exemplar& e = r->exemplars[rank];
      std::snprintf(line, sizeof(line),
                    "{\"type\":\"exemplar\",\"window\":%llu,\"class\":\"%s\","
                    "\"rank\":%zu,\"span\":%llu,\"node\":%d,\"us\":%.3f}\n",
                    static_cast<unsigned long long>(r->window), r->cls.c_str(),
                    rank, static_cast<unsigned long long>(e.span), e.node,
                    sim::toMicros(e.latency));
      os << line;
      for (std::uint8_t i = 0; i < e.detail.numStages; ++i) {
        const TimeTrace::StageRec& s = e.detail.stages[i];
        std::snprintf(
            line, sizeof(line),
            "{\"type\":\"exemplar_stage\",\"window\":%llu,"
            "\"class\":\"%s\",\"span\":%llu,\"seq\":%u,\"stage\":\"%s\","
            "\"us\":%.3f,\"depth\":%d,\"node\":%d}\n",
            static_cast<unsigned long long>(r->window), r->cls.c_str(),
            static_cast<unsigned long long>(e.span), static_cast<unsigned>(i),
            TimeTrace::stageName(s.stage), sim::toMicros(s.elapsed),
            s.queueDepth, s.node);
        os << line;
      }
    }
  }
  return os.str();
}

bool SloTracker::writeJsonl(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  os << toJsonl();
  return static_cast<bool>(os);
}

void SloTracker::registerClassMetrics(int id) {
  const std::string& name = classes_[static_cast<std::size_t>(id)].name;
  const std::string base = prefix_ + ".class." + name;
  reg_->probeCounter(base + ".requests", "ops", [this, id] {
    return static_cast<double>(classes_[static_cast<std::size_t>(id)].recorded);
  });
  reg_->probeCounter(base + ".breached_windows", "ops", [this, id] {
    return static_cast<double>(classes_[static_cast<std::size_t>(id)].breached);
  });
  reg_->probeGauge(base + ".burn_rate", "ratio", [this, id] {
    return classes_[static_cast<std::size_t>(id)].lastBurn;
  });
}

void SloTracker::registerMetrics(MetricRegistry& reg,
                                 const std::string& prefix) {
  reg_ = &reg;
  prefix_ = prefix;
  reg.probeCounter(prefix + ".windows", "ops", [this] {
    return static_cast<double>(rows_.size());
  });
  reg.probeCounter(prefix + ".breached_windows", "ops", [this] {
    return static_cast<double>(breachedTotal_);
  });
  reg.probeCounter(prefix + ".requests", "ops", [this] {
    return static_cast<double>(recorded_);
  });
  for (int id = 0; id < static_cast<int>(classes_.size()); ++id) {
    registerClassMetrics(id);
  }
}

}  // namespace rc::obs
