#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace rc::load {

/// One knot of a periodic, piecewise-linear rate multiplier curve.
struct RatePoint {
  double phase = 0;  ///< position within the period, in [0, 1)
  double mult = 1.0;
};

/// Periodic rate multiplier (diurnal load shape): linear interpolation
/// between knots, wrapping at the period. period <= 0 or no knots = flat 1.
/// Energy-proportionality studies live and die on these valleys
/// (Lang et al., PAPERS.md); docs/WORKLOADS.md has the model.
struct DiurnalCurve {
  sim::Duration period = 0;
  std::vector<RatePoint> points;  ///< sorted by phase

  bool flat() const { return period <= 0 || points.empty(); }
  double at(sim::SimTime t) const;
  /// Time-average multiplier over one period (exact trapezoid integral);
  /// the arrival-statistics tests check generated counts against it.
  double mean() const;
};

/// A scheduled rate surge: multiplier `factor` over [at, at + duration).
/// Overlapping crowds keep the largest factor (matching the kLoadSurge
/// fault's semantics, which this subsumes).
struct FlashCrowd {
  sim::SimTime at = 0;
  sim::Duration duration = 0;
  double factor = 1.0;
};

/// A scheduled popularity shift: at `at`, the key-popularity ranking is
/// re-anchored via KeyChooser::shiftHotKeys(shiftSeed) (cached permutation
/// remap; see ycsb/workload.hpp).
struct HotKeyShift {
  sim::SimTime at = 0;
  std::uint64_t shiftSeed = 1;
};

/// Shape of one TrafficSource's aggregated population: ~10^4 modeled users
/// collapse into a single open-loop arrival process of mean rate
/// users * opsPerUserPerSec, modulated by the diurnal curve and flash
/// crowds. docs/WORKLOADS.md derives the population-scaling math.
struct TrafficShape {
  enum class Process {
    kPoisson,  ///< memoryless aggregate (many independent thin users)
    kOnOff,    ///< superposed heavy-tailed on/off sub-sources: the
               ///< Willinger et al. construction of self-similar traffic
  };
  Process process = Process::kPoisson;

  double users = 10'000;
  double opsPerUserPerSec = 1.0;

  // kOnOff only: the population is split into `onOffSources` independent
  // sub-sources, each alternating Pareto(paretoShape) on/off periods with
  // the given mean on-duration and on-time fraction. While on, a sub-source
  // emits at rate baseRate/(onOffSources*onFraction), so the long-run mean
  // matches baseRate but the instantaneous rate is bursty at every scale
  // the heavy tail spans.
  int onOffSources = 32;
  double onFraction = 0.25;
  sim::Duration onMean = sim::msec(200);
  double paretoShape = 1.5;

  DiurnalCurve diurnal;
  std::vector<FlashCrowd> flashCrowds;
  std::vector<HotKeyShift> hotKeyShifts;

  double baseRate() const { return users * opsPerUserPerSec; }
};

/// Draws batched arrival runs for one TrafficSource. All randomness comes
/// from the Rng handed in (splitmix-forked per source by the cluster), so a
/// given (seed, source) pair replays bit-identically.
class ArrivalProcess {
 public:
  ArrivalProcess(TrafficShape shape, sim::Rng rng);

  /// Instantaneous offered rate at `t` (ops/sec), including diurnal and
  /// flash-crowd modulation and — for kOnOff — the currently-on sub-source
  /// count as of the last drawRun() cursor.
  double rateAt(sim::SimTime t) const;

  /// Runtime flash-crowd overlay (FaultPlan kLoadSurge lands here).
  void addCrowd(const FlashCrowd& c) { overlays_.push_back(c); }

  /// Draw the next run of arrivals after `from`: strictly increasing times
  /// in (from, end] are appended to `out`, where end <= from + maxHorizon
  /// is clamped to the next rate-change boundary (flash-crowd edge or
  /// on/off flip) so the rate is exactly constant across the drawn span.
  /// Returns `end`, the caller's new generation cursor. Stops early (at the
  /// last drawn arrival) once maxCount arrivals were appended.
  sim::SimTime drawRun(sim::SimTime from, sim::Duration maxHorizon,
                       std::size_t maxCount, std::vector<sim::SimTime>& out);

 private:
  double crowdFactor(sim::SimTime t) const;
  sim::SimTime nextBoundary(sim::SimTime from, sim::SimTime cap) const;
  void advanceOnOff(sim::SimTime t);
  sim::Duration paretoDuration(sim::Duration mean);

  TrafficShape shape_;
  sim::Rng rng_;
  std::vector<FlashCrowd> overlays_;
  // kOnOff sub-source state (parallel arrays; onOffSources is small).
  std::vector<char> on_;
  std::vector<sim::SimTime> flipAt_;
};

}  // namespace rc::load
