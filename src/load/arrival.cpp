#include "load/arrival.hpp"

#include <algorithm>
#include <cmath>

namespace rc::load {

double DiurnalCurve::at(sim::SimTime t) const {
  if (flat()) return 1.0;
  const auto p = static_cast<double>(period);
  double phase = std::fmod(static_cast<double>(t) / p, 1.0);
  if (phase < 0) phase += 1.0;
  // Locate the knot pair bracketing `phase` (points sorted; wrap at 1).
  std::size_t hi = 0;
  while (hi < points.size() && points[hi].phase <= phase) ++hi;
  const RatePoint& a = points[(hi + points.size() - 1) % points.size()];
  const RatePoint& b = points[hi % points.size()];
  double span = b.phase - a.phase;
  double off = phase - a.phase;
  if (span <= 0) span += 1.0;   // wrapped segment
  if (off < 0) off += 1.0;
  if (span <= 0) return a.mult;  // single knot
  const double f = off / span;
  return a.mult + (b.mult - a.mult) * f;
}

double DiurnalCurve::mean() const {
  if (flat()) return 1.0;
  if (points.size() == 1) return points[0].mult;
  // Exact trapezoid integral over one period of the piecewise-linear curve.
  double sum = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const RatePoint& a = points[i];
    const RatePoint& b = points[(i + 1) % points.size()];
    double span = b.phase - a.phase;
    if (span <= 0) span += 1.0;
    sum += 0.5 * (a.mult + b.mult) * span;
  }
  return sum;
}

ArrivalProcess::ArrivalProcess(TrafficShape shape, sim::Rng rng)
    : shape_(std::move(shape)), rng_(rng) {
  std::sort(shape_.flashCrowds.begin(), shape_.flashCrowds.end(),
            [](const FlashCrowd& a, const FlashCrowd& b) {
              return a.at < b.at;
            });
  std::sort(shape_.hotKeyShifts.begin(), shape_.hotKeyShifts.end(),
            [](const HotKeyShift& a, const HotKeyShift& b) {
              return a.at < b.at;
            });
  if (shape_.process == TrafficShape::Process::kOnOff) {
    const int k = std::max(1, shape_.onOffSources);
    on_.resize(static_cast<std::size_t>(k));
    flipAt_.resize(static_cast<std::size_t>(k));
    const double f = std::clamp(shape_.onFraction, 0.01, 1.0);
    const sim::Duration offMean = static_cast<sim::Duration>(
        static_cast<double>(shape_.onMean) * (1.0 - f) / f);
    for (std::size_t i = 0; i < on_.size(); ++i) {
      on_[i] = rng_.bernoulli(f) ? 1 : 0;
      flipAt_[i] = paretoDuration(on_[i] ? shape_.onMean : offMean);
    }
  }
}

sim::Duration ArrivalProcess::paretoDuration(sim::Duration mean) {
  // Bounded Pareto with mean ~`mean`: x = xm / U^(1/alpha), where
  // xm = mean*(alpha-1)/alpha. The 20x-mean cap keeps one unlucky draw
  // from silencing a sub-source for a whole run; the tail below the cap
  // still spans the timescales that make the superposition self-similar.
  const double alpha = std::max(1.05, shape_.paretoShape);
  const double m = std::max(1.0, static_cast<double>(mean));
  const double xm = m * (alpha - 1.0) / alpha;
  const double u = std::max(rng_.uniformDouble(), 1e-12);
  const double x = std::min(xm / std::pow(u, 1.0 / alpha), 20.0 * m);
  return std::max<sim::Duration>(1, static_cast<sim::Duration>(x));
}

void ArrivalProcess::advanceOnOff(sim::SimTime t) {
  if (on_.empty()) return;
  const double f = std::clamp(shape_.onFraction, 0.01, 1.0);
  const sim::Duration offMean = static_cast<sim::Duration>(
      static_cast<double>(shape_.onMean) * (1.0 - f) / f);
  for (std::size_t i = 0; i < on_.size(); ++i) {
    while (flipAt_[i] <= t) {
      on_[i] = on_[i] ? 0 : 1;
      flipAt_[i] += paretoDuration(on_[i] ? shape_.onMean : offMean);
    }
  }
}

double ArrivalProcess::crowdFactor(sim::SimTime t) const {
  // Overlapping crowds keep the largest factor (kLoadSurge semantics).
  double factor = 1.0;
  for (const FlashCrowd& c : shape_.flashCrowds) {
    if (t >= c.at && t < c.at + c.duration) factor = std::max(factor, c.factor);
  }
  for (const FlashCrowd& c : overlays_) {
    if (t >= c.at && t < c.at + c.duration) factor = std::max(factor, c.factor);
  }
  return factor;
}

double ArrivalProcess::rateAt(sim::SimTime t) const {
  double rate = shape_.baseRate() * shape_.diurnal.at(t) * crowdFactor(t);
  if (shape_.process == TrafficShape::Process::kOnOff && !on_.empty()) {
    const double f = std::clamp(shape_.onFraction, 0.01, 1.0);
    int active = 0;
    for (char c : on_) active += c;
    rate *= static_cast<double>(active) /
            (static_cast<double>(on_.size()) * f);
  }
  return std::max(rate, 0.0);
}

sim::SimTime ArrivalProcess::nextBoundary(sim::SimTime from,
                                          sim::SimTime cap) const {
  sim::SimTime b = cap;
  auto edge = [&](sim::SimTime t) {
    if (t > from && t < b) b = t;
  };
  for (const FlashCrowd& c : shape_.flashCrowds) {
    edge(c.at);
    edge(c.at + c.duration);
  }
  for (const FlashCrowd& c : overlays_) {
    edge(c.at);
    edge(c.at + c.duration);
  }
  for (sim::SimTime t : flipAt_) edge(t);
  return b;
}

sim::SimTime ArrivalProcess::drawRun(sim::SimTime from,
                                     sim::Duration maxHorizon,
                                     std::size_t maxCount,
                                     std::vector<sim::SimTime>& out) {
  advanceOnOff(from);
  const sim::SimTime end =
      nextBoundary(from, from + std::max<sim::Duration>(maxHorizon, 1));
  const double rate = rateAt(from);
  if (rate <= 0 || maxCount == 0) return end;
  const double meanGapSec = 1.0 / rate;
  sim::SimTime t = from;
  std::size_t n = 0;
  while (true) {
    t += std::max<sim::Duration>(
        1, sim::secondsF(rng_.exponential(meanGapSec)));
    if (t > end) return end;
    out.push_back(t);
    if (++n >= maxCount) return t;  // resume exactly here next run
  }
}

}  // namespace rc::load
