#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "client/ramcloud_client.hpp"
#include "load/arrival.hpp"
#include "obs/slo_tracker.hpp"
#include "sim/simulation.hpp"
#include "ycsb/workload.hpp"
#include "ycsb/ycsb_client.hpp"

namespace rc::load {

struct TrafficSourceParams {
  TrafficShape shape;

  /// Generator batching (docs/WORKLOADS.md): arrival *issue* times are
  /// rounded up to this quantum, so one wakeup event issues every arrival
  /// in the quantum — the per-request heap cost is amortized to
  /// ~1/(rate*quantum) events. Intent timestamps keep the exact drawn
  /// arrival times, so the sub-quantum issue delay is charged as honest
  /// open-loop queueing in the SLO numbers. <= 0 paces per arrival.
  sim::Duration batchQuantum = sim::usec(100);

  /// How far past the cursor one drawRun may generate. Bounds how stale a
  /// pre-drawn arrival can be relative to a runtime rate change (surge).
  sim::Duration maxHorizon = sim::msec(1);
  std::size_t maxBatch = 4096;  ///< arrivals per drawRun

  /// Open-loop safety valve: arrivals beyond this many outstanding ops are
  /// dropped at the source (counted in sourceDropped()) instead of growing
  /// client state without bound during a collapse.
  std::uint64_t maxInFlight = 200'000;

  /// First key id this source's *inserts* use (workload D); the cluster
  /// assigns disjoint bases per source.
  std::uint64_t insertKeyBase = 1ULL << 40;

  /// Tenant name for SLO attribution and RPC tagging ("" = untracked);
  /// same class naming as the closed-loop client (docs/SLO.md).
  std::string tenant;
};

/// An open-loop population load generator: one simulated object standing in
/// for shape.users modeled users. Arrivals are drawn in batches from the
/// ArrivalProcess and issued through the host's RamCloudClient with no
/// regard for completions — latency is measured from arrival *intent*, so
/// queueing during overload is visible (no coordinated omission).
class TrafficSource {
 public:
  TrafficSource(sim::Simulation& sim, client::RamCloudClient& client,
                std::uint64_t tableId, ycsb::WorkloadSpec spec,
                TrafficSourceParams params, sim::Rng rng);

  void start();
  void stop();
  bool running() const { return running_; }

  /// Completed/failed op counts and *intent-time* latency histograms
  /// (unlike the closed-loop client's RPC-time histograms).
  const ycsb::YcsbStats& stats() const { return stats_; }

  void setSloTracker(obs::SloTracker* slo);

  /// Fault hook (FaultPlan kLoadSurge): superpose a flash crowd of
  /// `factor` x the current rate for `d` from now.
  void applyLoadSurge(double factor, sim::Duration d) {
    process_.addCrowd({sim_.now(), d, factor});
  }

  double offeredRate() const { return process_.rateAt(sim_.now()); }

  // Generator accounting (the o(1)-events-per-request evidence).
  std::uint64_t arrivalsGenerated() const { return arrivalsGenerated_; }
  std::uint64_t wakeups() const { return wakeups_; }
  std::uint64_t sourceDropped() const { return sourceDropped_; }
  std::uint64_t hotShiftsApplied() const { return hotShiftsApplied_; }
  std::uint64_t inFlight() const { return inFlight_; }

 private:
  enum class OpKind { kRead, kUpdate, kInsert, kReadModifyWrite };

  void onWake();
  void scheduleWake();
  void refill();
  void issueOp(sim::SimTime intent);
  OpKind pickOp();
  std::uint64_t pickKey();
  std::uint64_t keyspaceSize() const {
    return spec_.recordCount + inserted_;
  }

  sim::Simulation& sim_;
  client::RamCloudClient& client_;
  std::uint64_t tableId_;
  ycsb::WorkloadSpec spec_;
  TrafficSourceParams params_;
  sim::Rng rng_;
  ycsb::KeyChooser keys_;
  ArrivalProcess process_;

  bool running_ = false;
  std::uint64_t generation_ = 0;
  std::deque<sim::SimTime> pending_;  ///< drawn arrivals not yet issued
  std::vector<sim::SimTime> runBuf_;
  sim::SimTime cursor_ = 0;     ///< generation frontier (arrivals drawn <=)
  std::size_t nextShift_ = 0;   ///< next shape.hotKeyShifts entry to apply

  std::uint64_t inFlight_ = 0;
  std::uint64_t inserted_ = 0;       ///< completed inserts (keyspace growth)
  std::uint64_t insertsIssued_ = 0;  ///< issued inserts (unique key ids)
  std::uint64_t arrivalsGenerated_ = 0;
  std::uint64_t wakeups_ = 0;
  std::uint64_t sourceDropped_ = 0;
  std::uint64_t hotShiftsApplied_ = 0;

  ycsb::YcsbStats stats_;
  obs::SloTracker* slo_ = nullptr;
  int readClass_ = -1;
  int updateClass_ = -1;
};

}  // namespace rc::load
