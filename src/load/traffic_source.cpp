#include "load/traffic_source.hpp"

#include <algorithm>
#include <utility>

namespace rc::load {

TrafficSource::TrafficSource(sim::Simulation& sim,
                             client::RamCloudClient& client,
                             std::uint64_t tableId, ycsb::WorkloadSpec spec,
                             TrafficSourceParams params, sim::Rng rng)
    : sim_(sim),
      client_(client),
      tableId_(tableId),
      spec_(std::move(spec)),
      params_(std::move(params)),
      rng_(rng),
      keys_(spec_, rng_.fork(1)),
      process_(params_.shape, rng_.fork(2)) {}

void TrafficSource::setSloTracker(obs::SloTracker* slo) {
  slo_ = slo;
  readClass_ = updateClass_ = -1;
  if (slo_ == nullptr || params_.tenant.empty()) return;
  readClass_ = slo_->classId(params_.tenant + "/read");
  updateClass_ = slo_->classId(params_.tenant + "/update");
  const int base = readClass_ >= 0 ? readClass_ : updateClass_;
  if (base >= 0) client_.setTenant(static_cast<std::uint16_t>(base + 1));
}

void TrafficSource::start() {
  if (running_) return;
  running_ = true;
  ++generation_;
  cursor_ = sim_.now();
  pending_.clear();
  scheduleWake();
}

void TrafficSource::stop() {
  running_ = false;
  ++generation_;
  pending_.clear();
}

void TrafficSource::refill() {
  // Draw whole inter-arrival runs until something lands in the buffer; the
  // guard bounds how many empty horizons (zero-rate stretches, diurnal
  // valleys) one wakeup scans before yielding back to the event loop.
  for (int guard = 0; pending_.empty() && guard < 64; ++guard) {
    runBuf_.clear();
    cursor_ = process_.drawRun(cursor_, params_.maxHorizon, params_.maxBatch,
                               runBuf_);
    arrivalsGenerated_ += runBuf_.size();
    for (sim::SimTime t : runBuf_) pending_.push_back(t);
  }
}

void TrafficSource::scheduleWake() {
  if (!running_) return;
  refill();
  const std::uint64_t gen = generation_;
  sim::SimTime tw;
  if (pending_.empty()) {
    tw = cursor_;  // long quiet stretch: re-poll at the generation frontier
  } else {
    tw = pending_.front();
    const sim::Duration q = params_.batchQuantum;
    if (q > 0) tw = (tw + q - 1) / q * q;  // batch the quantum's arrivals
  }
  sim_.scheduleAt(tw, [this, gen] {
    if (generation_ != gen) return;
    onWake();
  });
}

void TrafficSource::onWake() {
  if (!running_) return;
  ++wakeups_;
  const sim::SimTime now = sim_.now();
  const auto& shifts = params_.shape.hotKeyShifts;
  while (!pending_.empty() && pending_.front() <= now) {
    const sim::SimTime intent = pending_.front();
    pending_.pop_front();
    // Hot-key shifts fire between arrivals, keyed on intent time, so the
    // drawn sequence is independent of issue batching.
    while (nextShift_ < shifts.size() && shifts[nextShift_].at <= intent) {
      keys_.shiftHotKeys(shifts[nextShift_].shiftSeed);
      ++nextShift_;
      ++hotShiftsApplied_;
    }
    issueOp(intent);
  }
  scheduleWake();
}

TrafficSource::OpKind TrafficSource::pickOp() {
  double r = rng_.uniformDouble();
  if (r < spec_.readProportion) return OpKind::kRead;
  r -= spec_.readProportion;
  if (r < spec_.updateProportion) return OpKind::kUpdate;
  r -= spec_.updateProportion;
  if (r < spec_.insertProportion) return OpKind::kInsert;
  return OpKind::kReadModifyWrite;
}

std::uint64_t TrafficSource::pickKey() {
  const std::uint64_t idx = keys_.next(keyspaceSize());
  return idx < spec_.recordCount
             ? idx
             : params_.insertKeyBase + (idx - spec_.recordCount);
}

void TrafficSource::issueOp(sim::SimTime intent) {
  if (inFlight_ >= params_.maxInFlight) {
    ++sourceDropped_;
    return;
  }
  const std::uint64_t gen = generation_;
  const OpKind op = pickOp();
  const bool isRead = op == OpKind::kRead;
  // Per-op tenant tag, as in the closed loop. With many ops in flight the
  // tag is stamped at issue time (RPCs snapshot it), so flipping is safe.
  if (slo_ != nullptr) {
    const int cls = isRead ? readClass_ : updateClass_;
    if (cls >= 0) client_.setTenant(static_cast<std::uint16_t>(cls + 1));
  }
  std::uint64_t key;
  if (op == OpKind::kInsert) {
    key = params_.insertKeyBase + insertsIssued_++;
  } else {
    key = pickKey();
  }

  ++inFlight_;
  auto complete = [this, gen, op, isRead, intent](net::Status status,
                                                  sim::Duration) {
    if (generation_ != gen) return;
    if (inFlight_ > 0) --inFlight_;
    // Intent-to-completion latency: the open-loop tail metric. Includes
    // any batching-quantum issue delay and all queueing/retries — exactly
    // what a real user behind this source sees.
    const sim::Duration latency = sim_.now() - intent;
    if (status == net::Status::kOk) {
      if (slo_ != nullptr) {
        const int cls = isRead ? readClass_ : updateClass_;
        if (cls >= 0) {
          const auto& last = client_.lastOp();
          slo_->record(cls, last.valid ? last.node : -1,
                       last.valid ? last.span : 0, latency,
                       last.valid ? &last.detail : nullptr);
        }
      }
      ++stats_.opsCompleted;
      switch (op) {
        case OpKind::kRead:
          ++stats_.reads;
          stats_.readLatency.add(latency);
          break;
        case OpKind::kUpdate:
          ++stats_.updates;
          stats_.updateLatency.add(latency);
          break;
        case OpKind::kInsert:
          ++stats_.inserts;
          ++inserted_;
          stats_.updateLatency.add(latency);
          break;
        case OpKind::kReadModifyWrite:
          ++stats_.readModifyWrites;
          stats_.updateLatency.add(latency);
          break;
      }
    } else {
      ++stats_.failures;
    }
    stats_.lastCompletionAt = sim_.now();
  };

  switch (op) {
    case OpKind::kRead:
      client_.read(tableId_, key, std::move(complete));
      break;
    case OpKind::kUpdate:
    case OpKind::kInsert:
      client_.write(tableId_, key, spec_.valueBytes, std::move(complete));
      break;
    case OpKind::kReadModifyWrite:
      // Unconditioned read-then-write, as the closed loop's non-tx RMW;
      // the transactional variant stays closed-loop (docs/TRANSACTIONS.md).
      client_.read(
          tableId_, key,
          [this, gen, key, complete = std::move(complete)](
              net::Status s, sim::Duration) mutable {
            if (generation_ != gen) return;
            if (s != net::Status::kOk) {
              complete(s, 0);
              return;
            }
            client_.write(tableId_, key, spec_.valueBytes,
                          [complete = std::move(complete)](
                              net::Status s2, sim::Duration) mutable {
                            complete(s2, 0);
                          });
          });
      break;
  }
}

}  // namespace rc::load
