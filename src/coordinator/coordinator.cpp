#include "coordinator/coordinator.hpp"

#include <algorithm>
#include <utility>

#include "hash/object_map.hpp"
#include "server/backup_service.hpp"
#include "server/master_service.hpp"

namespace rc::coordinator {

using server::RecoveryPlan;
using server::RecoveryPlanPtr;
using server::ServerId;
using server::Tablet;

Coordinator::Coordinator(node::Node& node, net::RpcSystem& rpc,
                         const server::ServiceDirectory& directory,
                         CoordinatorParams params, sim::Rng rng)
    : node_(node),
      rpc_(rpc),
      directory_(directory),
      params_(params),
      rng_(rng) {}

void Coordinator::handleRpc(const net::RpcRequest& req, node::NodeId /*from*/,
                            Responder respond) {
  switch (req.op) {
    case net::Opcode::kPing: {
      respond(net::RpcResponse{});
      break;
    }
    case net::Opcode::kGetTabletMap: {
      net::RpcResponse r;
      r.a = map_.version();
      r.payloadBytes = 64 * map_.entries().size();
      respond(std::move(r));
      break;
    }
    case net::Opcode::kRecoveryDone: {
      const std::uint64_t planId = req.a;
      const int partition = static_cast<int>(req.b);
      const bool failed = req.c != 0;
      respond(net::RpcResponse{});
      onRecoveryDone(planId, partition, failed);
      break;
    }
    case net::Opcode::kEnlist: {
      enlistServer(static_cast<ServerId>(req.a));
      respond(net::RpcResponse{});
      break;
    }
    case net::Opcode::kMigrationDone: {
      respond(net::RpcResponse{});
      onMigrationDone(req);
      break;
    }
    case net::Opcode::kOpenLease: {
      const std::uint64_t cid = nextClientId_++;
      leases_[cid] = node_.sim().now() + params_.leaseTerm;
      ++leasesIssued_;
      if (!leaseSweep_) {
        leaseSweep_ = std::make_unique<sim::PeriodicTask>(
            node_.sim(), params_.leaseSweepInterval,
            [this](sim::SimTime) { sweepLeases(); });
      }
      net::RpcResponse r;
      r.a = cid;
      r.b = static_cast<std::uint64_t>(params_.leaseTerm);
      respond(std::move(r));
      break;
    }
    case net::Opcode::kTxResolve: {
      // A master's reclamation sweep found version locks whose transaction
      // client's lease is gone: run cooperative termination for them.
      const std::uint64_t txId = req.a;
      const std::uint64_t txClient = req.b;
      std::vector<std::pair<std::uint64_t, std::uint64_t>> participants;
      if (req.keys != nullptr) {
        const auto& keys = *req.keys;
        for (std::size_t i = 0; i + 1 < keys.size(); i += 2) {
          participants.emplace_back(keys[i], keys[i + 1]);
        }
      }
      respond(net::RpcResponse{});
      startTxResolution(txId, txClient, std::move(participants));
      break;
    }
    case net::Opcode::kRenewLease: {
      net::RpcResponse r;
      auto it = leases_.find(req.a);
      if (it == leases_.end()) {
        // Lease already expired: the client must reopen and accept that its
        // pre-expiry retries lost the exactly-once guarantee.
        r.status = net::Status::kExpiredLease;
      } else {
        it->second = node_.sim().now() + params_.leaseTerm;
        ++leaseRenewals_;
        r.a = req.a;
        r.b = static_cast<std::uint64_t>(params_.leaseTerm);
      }
      respond(std::move(r));
      break;
    }
    default: {
      net::RpcResponse r;
      r.status = net::Status::kError;
      respond(std::move(r));
    }
  }
}

void Coordinator::enlistServer(ServerId id) {
  if (std::find(up_.begin(), up_.end(), id) == up_.end()) up_.push_back(id);
}

std::uint64_t Coordinator::createTable(const std::string& name,
                                       int serverSpan) {
  if (auto it = tablesByName_.find(name); it != tablesByName_.end()) {
    return it->second;
  }
  const std::uint64_t tableId = nextTableId_++;
  tablesByName_[name] = tableId;

  const int span =
      std::max(1, std::min<int>(serverSpan, static_cast<int>(up_.size())));
  const std::uint64_t step = (~0ULL) / static_cast<std::uint64_t>(span);
  for (int i = 0; i < span; ++i) {
    Tablet t;
    t.tableId = tableId;
    t.startHash = static_cast<std::uint64_t>(i) * step;
    t.endHash = (i == span - 1)
                    ? ~0ULL
                    : static_cast<std::uint64_t>(i + 1) * step - 1;
    t.owner = up_[static_cast<std::size_t>(i) % up_.size()];
    map_.addTablet(t);
    if (auto* m = directory_.masterOn(t.owner)) m->addTablet(t);
  }
  return tableId;
}

void Coordinator::migrateTablet(const server::Tablet& tablet, ServerId dest,
                                std::function<void(bool)> done) {
  // Validate: the tablet must exist as-is and the destination must be up.
  const auto* entry = map_.lookup(tablet.tableId, tablet.startHash);
  const bool valid =
      entry != nullptr && entry->tablet.startHash == tablet.startHash &&
      entry->tablet.endHash == tablet.endHash &&
      entry->state == TabletMap::TabletState::kUp &&
      std::find(up_.begin(), up_.end(), dest) != up_.end() &&
      entry->tablet.owner != dest;
  if (!valid) {
    if (done) done(false);
    return;
  }
  ActiveMigration am;
  am.tablet = entry->tablet;
  am.from = entry->tablet.owner;
  am.to = dest;
  am.done = std::move(done);
  activeMigrations_.push_back(std::move(am));

  net::RpcRequest req;
  req.op = net::Opcode::kMigrateTablet;
  req.a = tablet.tableId;
  req.b = tablet.startHash;
  req.c = tablet.endHash;
  req.d = static_cast<std::uint64_t>(dest);
  rpc_.call(node_.id(), entry->tablet.owner, net::kMasterPort, req,
            server::timeouts::kControl, [this, t = tablet](
                                            const net::RpcResponse& resp) {
              if (resp.status == net::Status::kOk) return;  // in progress
              // Source refused or died: fail the migration record.
              net::RpcRequest fake;
              fake.a = t.tableId;
              fake.b = t.startHash;
              fake.c = t.endHash;
              fake.d = static_cast<std::uint64_t>(node::kInvalidNode);
              onMigrationDone(fake);
            });
}

void Coordinator::onMigrationDone(const net::RpcRequest& req) {
  const std::uint64_t tableId = req.a;
  const std::uint64_t start = req.b;
  const std::uint64_t end = req.c;
  const auto dest = static_cast<ServerId>(req.d);
  const bool ok = dest != node::kInvalidNode;

  auto it = std::find_if(activeMigrations_.begin(), activeMigrations_.end(),
                         [&](const ActiveMigration& am) {
                           return am.tablet.tableId == tableId &&
                                  am.tablet.startHash == start &&
                                  am.tablet.endHash == end;
                         });
  if (it == activeMigrations_.end()) return;
  ActiveMigration am = std::move(*it);
  activeMigrations_.erase(it);
  if (ok) {
    map_.reassign(tableId, start, end, am.from, am.to);
    if (auto* m = directory_.masterOn(am.to)) {
      server::Tablet t = am.tablet;
      t.owner = am.to;
      m->addTablet(t);
    }
    ++migrationsCompleted_;
    if (journal_ != nullptr) {
      // req.traceSpan carries the source master's migration span id, so
      // the ownership flip is a cross-node child of the migration.
      journal_->event("ownership_transfer", node_.id(), req.traceSpan);
    }
  }
  if (am.done) am.done(ok);
}

bool Coordinator::decommissionServer(ServerId id) {
  if (!map_.tabletsOwnedBy(id).empty()) return false;
  auto it = std::find(up_.begin(), up_.end(), id);
  if (it == up_.end()) return true;
  up_.erase(it);
  pingMisses_.erase(id);
  return true;
}

bool Coordinator::leaseValid(std::uint64_t clientId) const {
  auto it = leases_.find(clientId);
  return it != leases_.end() && it->second > node_.sim().now();
}

void Coordinator::sweepLeases() {
  const sim::SimTime now = node_.sim().now();
  std::vector<std::uint64_t> expired;
  for (const auto& [cid, expiry] : leases_) {
    if (expiry <= now) expired.push_back(cid);
  }
  std::sort(expired.begin(), expired.end());  // deterministic journal order
  for (std::uint64_t cid : expired) {
    leases_.erase(cid);
    ++leasesExpired_;
    if (journal_ != nullptr) {
      const auto ev = journal_->event("lease_expire", node_.id());
      journal_->addCount(ev, cid);
    }
  }
}

void Coordinator::startTxResolution(
    std::uint64_t txId, std::uint64_t txClient,
    std::vector<std::pair<std::uint64_t, std::uint64_t>> participants) {
  if (participants.empty()) return;
  if (activeTxResolutions_.count(txId) != 0) return;  // already resolving
  // The transaction client is still alive: it drives its own commit point,
  // and resolving under it would race the decision it is about to make.
  // The participant's sweep re-requests once the lease actually lapses.
  if (leaseValid(txClient)) return;
  activeTxResolutions_.insert(txId);
  ++txResolutionsStarted_;

  struct ResolveCtx {
    std::uint64_t txId = 0;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> participants;
    std::vector<std::uint64_t> votes;  // 1 prepared, 2 committed, 3 no-vote
    int pendingVotes = 0;
    int pendingDecisions = 0;
    bool abandoned = false;
    obs::EventJournal::SpanId span = 0;
  };
  auto cx = std::make_shared<ResolveCtx>();
  cx->txId = txId;
  cx->participants = std::move(participants);
  cx->pendingVotes = static_cast<int>(cx->participants.size());
  if (journal_ != nullptr) {
    cx->span = journal_->beginSpan("tx_resolution", node_.id(), 0, txId);
  }

  // Any participant unreachable (owner recovering, vote timed out) aborts
  // this attempt without deciding anything; the surviving locks re-request
  // resolution on the next reclamation sweep.
  auto abandon = [this, cx] {
    if (cx->abandoned) return;
    cx->abandoned = true;
    activeTxResolutions_.erase(cx->txId);
    ++txResolutionsAbandoned_;
    if (cx->span != 0) journal_->abandonSpan(cx->span);
  };

  auto decide = [this, cx, abandon] {
    // Sinfonia cooperative termination: a participant that already applied
    // a decision pins the outcome; otherwise the transaction commits iff
    // *every* participant is still prepared (the client reached its commit
    // point exactly when all prepares voted yes). Any no-vote — the
    // participant also fences the tx so a straggling prepare cannot
    // resurrect it — forces abort.
    bool anyCommitted = false;
    bool anyNo = false;
    for (const std::uint64_t v : cx->votes) {
      if (v == 2) anyCommitted = true;
      if (v == 3) anyNo = true;
    }
    const bool commit = anyCommitted || !anyNo;
    cx->pendingDecisions = static_cast<int>(cx->participants.size());
    for (const auto& [tableId, keyId] : cx->participants) {
      const auto finishOne = [this, cx, commit] {
        if (--cx->pendingDecisions > 0) return;
        activeTxResolutions_.erase(cx->txId);
        if (commit) {
          ++txResolutionsCommitted_;
        } else {
          ++txResolutionsAborted_;
        }
        if (cx->span != 0) {
          journal_->addCount(cx->span, commit ? 1 : 0);
          journal_->endSpan(cx->span);
        }
      };
      const auto* entry =
          map_.lookup(tableId, hash::keyHash(hash::Key{tableId, keyId}));
      if (entry == nullptr ||
          entry->state == TabletMap::TabletState::kRecovering) {
        // Undeliverable now: the recovered lock re-requests resolution and
        // the (deterministic) decision is re-derived then.
        finishOne();
        continue;
      }
      net::RpcRequest dec;
      dec.op = net::Opcode::kTxDecision;
      dec.a = tableId;
      dec.b = keyId;
      dec.c = (commit ? 1ULL : 0ULL) | 2ULL;  // bit1: from resolution
      dec.d = cx->txId;
      rpc_.call(node_.id(), entry->tablet.owner, net::kMasterPort, dec,
                server::timeouts::kControl,
                [finishOne](const net::RpcResponse&) { finishOne(); });
    }
  };

  for (std::size_t i = 0; i < cx->participants.size(); ++i) {
    const auto [tableId, keyId] = cx->participants[i];
    const auto* entry =
        map_.lookup(tableId, hash::keyHash(hash::Key{tableId, keyId}));
    if (entry == nullptr ||
        entry->state == TabletMap::TabletState::kRecovering) {
      abandon();
      return;
    }
    net::RpcRequest vote;
    vote.op = net::Opcode::kTxVote;
    vote.a = tableId;
    vote.b = keyId;
    vote.d = txId;
    rpc_.call(node_.id(), entry->tablet.owner, net::kMasterPort, vote,
              server::timeouts::kControl,
              [cx, abandon, decide](const net::RpcResponse& resp) {
                if (cx->abandoned) return;
                if (resp.status != net::Status::kOk) {
                  abandon();
                  return;
                }
                cx->votes.push_back(resp.a);
                if (--cx->pendingVotes == 0) decide();
              });
  }
}

void Coordinator::startFailureDetector() {
  if (detector_) return;
  detector_ = std::make_unique<sim::PeriodicTask>(
      node_.sim(), params_.pingInterval, [this](sim::SimTime) { pingAll(); });
}

void Coordinator::stopFailureDetector() { detector_.reset(); }

void Coordinator::pingAll() {
  for (ServerId id : up_) {
    net::RpcRequest req;
    req.op = net::Opcode::kPing;
    rpc_.call(node_.id(), id, net::kMasterPort, req, server::timeouts::kPing,
              [this, id](const net::RpcResponse& resp) {
                if (resp.status == net::Status::kOk) {
                  pingMisses_[id] = 0;
                  // A reply after misses: false alarm, drop the suspicion.
                  if (auto ds = detectSpans_.find(id);
                      ds != detectSpans_.end()) {
                    if (journal_ != nullptr) journal_->abandonSpan(ds->second);
                    detectSpans_.erase(ds);
                  }
                } else {
                  onPingMiss(id);
                }
              });
  }
}

void Coordinator::onPingMiss(ServerId id) {
  if (std::find(up_.begin(), up_.end(), id) == up_.end()) return;
  const int misses = ++pingMisses_[id];
  if (misses == 1 && journal_ != nullptr &&
      detectSpans_.find(id) == detectSpans_.end()) {
    // Suspicion starts at the first missed ping; the span ends when the
    // server is declared dead (or is abandoned if it answers again).
    detectSpans_[id] = journal_->beginSpan("failure_detection", node_.id());
  }
  if (misses >= params_.missesBeforeDead) {
    onServerDead(id);
  }
}

void Coordinator::onServerDead(ServerId id) {
  auto it = std::find(up_.begin(), up_.end(), id);
  if (it == up_.end()) return;  // already handled
  up_.erase(it);
  pingMisses_.erase(id);
  if (journal_ != nullptr) {
    // Detection is complete; the entry stays until beginRecovery links the
    // span under the recovery root (or discards it if nothing to recover).
    if (auto ds = detectSpans_.find(id); ds != detectSpans_.end()) {
      journal_->endSpan(ds->second);
    }
  }
  if (onCrashDetected) onCrashDetected(id);

  // Tell every surviving master: replica slots on the dead server must be
  // re-replicated, and in-flight recovery fetches from it should fail over
  // now rather than wait out their RPC timeouts.
  for (ServerId m : up_) {
    net::RpcRequest req;
    req.op = net::Opcode::kServerListUpdate;
    req.a = static_cast<std::uint64_t>(id);
    rpc_.call(node_.id(), m, net::kMasterPort, req,
              server::timeouts::kControl, [](const net::RpcResponse&) {});
  }

  // If the dead server was acting as a recovery master, re-run its
  // partitions elsewhere — including ones it already reported done, since
  // the recovered data died with it. (Collect first: retries can finish —
  // and erase — a recovery, invalidating iterators.)
  std::vector<std::pair<std::uint64_t, int>> toRetry;
  for (auto& [rid, rec] : activeRecoveries_) {
    for (std::size_t p = 0; p < rec.partitionOwner.size(); ++p) {
      if (rec.partitionOwner[p] != id) continue;
      if (rec.partitionDone[p]) {
        rec.partitionDone[p] = false;
        ++rec.remaining;
      }
      toRetry.emplace_back(rid, static_cast<int>(p));
    }
  }
  for (const auto& [rid, p] : toRetry) {
    auto it2 = activeRecoveries_.find(rid);
    if (it2 != activeRecoveries_.end()) retryPartition(it2->second, p);
  }

  beginRecovery(id);
}

void Coordinator::beginRecovery(ServerId id) {
  // Consume the failure_detection span (if the detector saw this crash):
  // either it becomes the first child of the recovery root below, or the
  // crash needs no recovery and the closed span stays a lone root.
  std::uint64_t detectSpan = 0;
  if (auto ds = detectSpans_.find(id); ds != detectSpans_.end()) {
    detectSpan = ds->second;
    detectSpans_.erase(ds);
  }

  if (map_.tabletsOwnedBy(id).empty()) return;  // nothing to recover
  for (const auto& [rid, rec] : activeRecoveries_) {
    if (rec.crashed == id) return;  // already recovering this master
  }
  map_.markRecovering(id);

  const std::uint64_t recoveryId = nextRecoveryId_++;
  ActiveRecovery rec;
  rec.recoveryId = recoveryId;
  rec.crashed = id;
  rec.detectedAt = node_.sim().now();
  if (journal_ != nullptr) {
    rec.rootSpan = journal_->beginSpan("recovery", node_.id(), 0, recoveryId);
    if (detectSpan != 0) {
      journal_->linkSpan(detectSpan, rec.rootSpan, recoveryId);
    }
    // Covers crash verification, scheduling and the segment-list gather
    // (the paper's "will lookup"); closed in buildAndStartPlan.
    rec.lookupSpan =
        journal_->beginSpan("will_lookup", node_.id(), rec.rootSpan,
                            recoveryId);
  }
  activeRecoveries_[recoveryId] = std::move(rec);
  if (onRecoveryStarted) onRecoveryStarted(recoveryId, id);

  // Verify the crash and schedule (paper: the coordinator double-checks,
  // confirms backup availability, selects recovery masters a-priori).
  node_.sim().schedule(params_.recoverySetupDelay, [this, recoveryId] {
    auto it = activeRecoveries_.find(recoveryId);
    if (it == activeRecoveries_.end()) return;
    // Gather segment lists from every live backup (timing via RPC; the
    // frame contents are read through the directory).
    auto pendingReplies = std::make_shared<int>(0);
    const std::vector<ServerId> backups =
        directory_.liveBackups ? directory_.liveBackups()
                               : std::vector<ServerId>{};
    if (backups.empty()) {
      auto& rec = activeRecoveries_[recoveryId];
      finishRecovery(rec, false);
      return;
    }
    *pendingReplies = static_cast<int>(backups.size());
    for (ServerId b : backups) {
      net::RpcRequest req;
      req.op = net::Opcode::kGetSegmentList;
      req.a = static_cast<std::uint64_t>(activeRecoveries_[recoveryId].crashed);
      rpc_.call(node_.id(), b, net::kBackupPort, req,
                server::timeouts::kControl,
                [this, recoveryId, pendingReplies](const net::RpcResponse&) {
                  if (--*pendingReplies > 0) return;
                  auto it2 = activeRecoveries_.find(recoveryId);
                  if (it2 == activeRecoveries_.end()) return;
                  buildAndStartPlan(it2->second);
                });
    }
  });
}

void Coordinator::buildAndStartPlan(ActiveRecovery& rec) {
  if (journal_ != nullptr && rec.lookupSpan != 0) {
    journal_->endSpan(rec.lookupSpan);  // segment lists are in
    rec.lookupSpan = 0;
  }
  std::vector<ServerId> masters = up_;
  if (masters.empty()) {
    finishRecovery(rec, false);
    return;
  }
  const int p = static_cast<int>(masters.size());
  rec.partitionDone.assign(static_cast<std::size_t>(p), false);
  rec.partitionOwner = masters;
  rec.remaining = p;

  const std::uint64_t assignSpan =
      journal_ != nullptr
          ? journal_->beginSpan("partition_assignment", node_.id(),
                                rec.rootSpan, rec.recoveryId)
          : 0;
  std::vector<int> all(static_cast<std::size_t>(p));
  for (int i = 0; i < p; ++i) all[static_cast<std::size_t>(i)] = i;
  RecoveryPlanPtr plan = buildPlan(rec, all, masters);
  if (assignSpan != 0) {
    journal_->addCount(assignSpan, static_cast<std::uint64_t>(p));
    journal_->endSpan(assignSpan);
  }
  if (!plan || plan->segments.empty()) {
    // No backup holds a single replica of this master (e.g. replication
    // disabled, or every replica holder also died): the data is lost.
    finishRecovery(rec, false);
    return;
  }
  const std::uint64_t recoveryId = rec.recoveryId;
  for (int i = 0; i < p; ++i) {
    net::RpcRequest req;
    req.op = net::Opcode::kStartRecovery;
    req.a = plan->planId;
    req.b = static_cast<std::uint64_t>(i);
    rpc_.call(node_.id(), masters[static_cast<std::size_t>(i)],
              net::kMasterPort, req, server::timeouts::kControl,
              [this, recoveryId, i](const net::RpcResponse& resp) {
                if (resp.status == net::Status::kOk) return;
                // The designated recovery master never started (crashed or
                // unreachable): hand the partition to someone else.
                auto it = activeRecoveries_.find(recoveryId);
                if (it == activeRecoveries_.end()) return;
                ActiveRecovery& r = it->second;
                if (i < static_cast<int>(r.partitionDone.size()) &&
                    !r.partitionDone[static_cast<std::size_t>(i)]) {
                  retryPartition(r, i);
                }
              });
  }
}

server::RecoveryPlanPtr Coordinator::buildPlan(
    ActiveRecovery& rec, const std::vector<int>& partitionsToRun,
    const std::vector<ServerId>& masters) {
  const int totalPartitions = static_cast<int>(rec.partitionDone.size());
  auto plan = std::make_shared<RecoveryPlan>();
  plan->planId = nextPlanId_++;
  plan->crashedMaster = rec.crashed;
  plan->recoveryId = rec.recoveryId;
  plan->rootSpan = rec.rootSpan;

  // Partition specs: split each of the dead master's tablets into
  // `totalPartitions` equal hash subranges (the "will").
  const std::vector<Tablet> tablets = map_.tabletsOwnedBy(rec.crashed);
  if (tablets.empty()) return nullptr;

  std::vector<server::PartitionSpec> allParts(
      static_cast<std::size_t>(totalPartitions));
  for (const Tablet& t : tablets) {
    const std::uint64_t width = t.endHash - t.startHash;
    const std::uint64_t step =
        width / static_cast<std::uint64_t>(totalPartitions);
    for (int i = 0; i < totalPartitions; ++i) {
      Tablet sub = t;
      sub.startHash = t.startHash + static_cast<std::uint64_t>(i) * step;
      sub.endHash = (i == totalPartitions - 1)
                        ? t.endHash
                        : sub.startHash + step - 1;
      allParts[static_cast<std::size_t>(i)].ranges.push_back(sub);
    }
  }

  // The plan carries only the partitions to run now (retries are
  // single-partition plans); owners index into `masters`.
  for (std::size_t i = 0; i < partitionsToRun.size(); ++i) {
    const int global = partitionsToRun[i];
    plan->partitions.push_back(allParts[static_cast<std::size_t>(global)]);
    plan->recoveryMasters.push_back(masters[i % masters.size()]);
    rec.planPartitionBase[plan->planId] = partitionsToRun.front();
  }
  rec.partitions = allParts;

  // Segment sources: union of all live backups' frames for the crashed
  // master, replicas ordered by watermark (they agree unless a write was
  // in flight at the crash).
  std::unordered_map<log::SegmentId, RecoveryPlan::SegmentSource> sources;
  if (directory_.liveBackups && directory_.backupOn) {
    for (ServerId b : directory_.liveBackups()) {
      server::BackupService* bs = directory_.backupOn(b);
      if (bs == nullptr) continue;
      for (const auto& fi : bs->framesForMaster(rec.crashed)) {
        auto& src = sources[fi.segment];
        src.segment = fi.segment;
        src.bytes = std::max(src.bytes, fi.bytes);
        src.backups.push_back(b);
      }
    }
  }
  for (auto& [segId, src] : sources) plan->segments.push_back(std::move(src));
  std::sort(plan->segments.begin(), plan->segments.end(),
            [](const auto& a, const auto& b) { return a.segment < b.segment; });

  plans_[plan->planId] = plan;
  planRecovery_[plan->planId] = rec.recoveryId;
  return plan;
}

server::RecoveryPlanPtr Coordinator::planById(std::uint64_t id) const {
  auto it = plans_.find(id);
  return it == plans_.end() ? nullptr : it->second;
}

void Coordinator::onRecoveryDone(std::uint64_t planId, int planPartition,
                                 bool failed) {
  auto pr = planRecovery_.find(planId);
  if (pr == planRecovery_.end()) return;
  auto ar = activeRecoveries_.find(pr->second);
  if (ar == activeRecoveries_.end()) return;
  ActiveRecovery& rec = ar->second;

  auto baseIt = rec.planPartitionBase.find(planId);
  const int base = baseIt == rec.planPartitionBase.end() ? 0 : baseIt->second;
  const int global = base + planPartition;
  if (global < 0 || global >= static_cast<int>(rec.partitionDone.size()) ||
      rec.partitionDone[static_cast<std::size_t>(global)]) {
    return;
  }

  if (failed) {
    retryPartition(rec, global);
    return;
  }

  rec.partitionDone[static_cast<std::size_t>(global)] = true;
  if (--rec.remaining == 0) finishRecovery(rec, true);
}

void Coordinator::retryPartition(ActiveRecovery& rec, int globalPartition) {
  if (++rec.retries > 8) {
    finishRecovery(rec, false);
    return;
  }
  // Pick a fresh owner, preferring someone other than the failed one.
  const ServerId old =
      rec.partitionOwner[static_cast<std::size_t>(globalPartition)];
  std::vector<ServerId> candidates = up_;
  std::erase(candidates, old);
  if (candidates.empty()) candidates = up_;
  if (candidates.empty()) {
    finishRecovery(rec, false);
    return;
  }
  const ServerId fresh = candidates[rng_.uniformInt(candidates.size())];
  rec.partitionOwner[static_cast<std::size_t>(globalPartition)] = fresh;

  RecoveryPlanPtr plan = buildPlan(rec, {globalPartition}, {fresh});
  if (!plan) {
    finishRecovery(rec, false);
    return;
  }
  const std::uint64_t recoveryId = rec.recoveryId;
  net::RpcRequest req;
  req.op = net::Opcode::kStartRecovery;
  req.a = plan->planId;
  req.b = 0;
  rpc_.call(node_.id(), fresh, net::kMasterPort, req,
            server::timeouts::kControl,
            [this, recoveryId, globalPartition](const net::RpcResponse& resp) {
              if (resp.status == net::Status::kOk) return;
              auto it = activeRecoveries_.find(recoveryId);
              if (it == activeRecoveries_.end()) return;
              ActiveRecovery& r = it->second;
              if (globalPartition <
                      static_cast<int>(r.partitionDone.size()) &&
                  !r.partitionDone[static_cast<std::size_t>(
                      globalPartition)]) {
                retryPartition(r, globalPartition);
              }
            });
}

void Coordinator::finishRecovery(ActiveRecovery& rec, bool success) {
  if (success) {
    // Flip ownership in the tablet map partition by partition.
    for (std::size_t p = 0; p < rec.partitions.size(); ++p) {
      const ServerId owner = rec.partitionOwner[p];
      for (const Tablet& sub : rec.partitions[p].ranges) {
        map_.reassign(sub.tableId, sub.startHash, sub.endHash, rec.crashed,
                      owner);
      }
    }
    if (journal_ != nullptr && rec.rootSpan != 0) {
      const auto tabletRemap = journal_->event("tablet_remap", node_.id(),
                                               rec.rootSpan, rec.recoveryId);
      journal_->addCount(tabletRemap,
                         static_cast<std::uint64_t>(rec.partitions.size()));
    }
    // Old replicas are no longer needed: free the dead master's frames.
    if (directory_.liveBackups) {
      for (ServerId b : directory_.liveBackups()) {
        net::RpcRequest req;
        req.op = net::Opcode::kBackupFree;
        req.a = static_cast<std::uint64_t>(rec.crashed);
        req.c = 1;  // all frames of this master
        rpc_.call(node_.id(), b, net::kBackupPort, req,
                  server::timeouts::kControl, [](const net::RpcResponse&) {});
      }
    }
  }

  RecoveryRecord out;
  out.crashed = rec.crashed;
  out.detectedAt = rec.detectedAt;
  out.finishedAt = node_.sim().now();
  out.partitions = static_cast<int>(rec.partitionDone.size());
  out.partitionRetries = rec.retries;
  out.succeeded = success;
  recoveryLog_.push_back(out);

  if (journal_ != nullptr && rec.rootSpan != 0) {
    if (rec.lookupSpan != 0) journal_->abandonSpan(rec.lookupSpan);
    if (success) {
      journal_->endSpan(rec.rootSpan);
    } else {
      journal_->abandonSpan(rec.rootSpan);
    }
  }

  const std::uint64_t rid = rec.recoveryId;
  if (onRecoveryFinished) onRecoveryFinished(out);
  activeRecoveries_.erase(rid);
}

}  // namespace rc::coordinator
