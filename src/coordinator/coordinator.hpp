#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "coordinator/tablet_map.hpp"
#include "net/rpc.hpp"
#include "node/node.hpp"
#include "obs/event_journal.hpp"
#include "server/common.hpp"
#include "server/recovery_plan.hpp"
#include "sim/rng.hpp"
#include "sim/simulation.hpp"

namespace rc::coordinator {

struct CoordinatorParams {
  sim::Duration pingInterval = sim::msec(100);
  int missesBeforeDead = 3;
  /// Coordinator-side verification + scheduling latency before a recovery
  /// actually starts (the paper's "check whether that server truly
  /// crashed ... schedule a recovery").
  sim::Duration recoverySetupDelay = sim::msec(50);
  /// Client-lease term (RIFL). A client that fails to renew within the term
  /// loses its duplicate-suppression state cluster-wide; clients renew at
  /// term/4 so a single lost renewal cannot expire a healthy client.
  sim::Duration leaseTerm = sim::seconds(30);
  /// Cadence of the expiry sweep that drops dead leases (and journals
  /// lease_expire events masters key their reclamation off).
  sim::Duration leaseSweepInterval = sim::seconds(1);
};

/// Record of one completed (or failed) master recovery.
struct RecoveryRecord {
  server::ServerId crashed = node::kInvalidNode;
  sim::SimTime detectedAt = 0;
  sim::SimTime finishedAt = 0;
  int partitions = 0;
  int partitionRetries = 0;
  bool succeeded = false;

  sim::Duration duration() const { return finishedAt - detectedAt; }
};

/// The RAMCloud coordinator: server list, tablet map, failure detection and
/// crash-recovery orchestration.
class Coordinator : public net::RpcService {
 public:
  Coordinator(node::Node& node, net::RpcSystem& rpc,
              const server::ServiceDirectory& directory,
              CoordinatorParams params, sim::Rng rng);

  void handleRpc(const net::RpcRequest& req, node::NodeId from,
                 Responder respond) override;

  // ----- cluster setup

  void enlistServer(server::ServerId id);

  /// Create a table spanning `serverSpan` masters (the paper's ServerSpan
  /// option: uniform manual distribution). Returns the table id.
  std::uint64_t createTable(const std::string& name, int serverSpan);

  const TabletMap& tabletMap() const { return map_; }
  const std::vector<server::ServerId>& upServers() const { return up_; }

  // ----- failure handling

  void startFailureDetector();
  void stopFailureDetector();

  // ----- client leases (docs/LINEARIZABILITY.md)

  /// Is this client id's lease still valid *now*? Masters consult this on
  /// every tracked RPC and during their reclamation sweeps.
  bool leaseValid(std::uint64_t clientId) const;

  std::size_t activeLeases() const { return leases_.size(); }
  std::uint64_t leasesIssued() const { return leasesIssued_; }
  std::uint64_t leaseRenewals() const { return leaseRenewals_; }
  std::uint64_t leasesExpired() const { return leasesExpired_; }

  // ----- cluster resizing (SS IX: tablet migration + node add/remove)

  /// Move `tablet` (must match an existing map entry exactly) to `dest`.
  /// `done(ok)` fires after the map has been flipped.
  void migrateTablet(const server::Tablet& tablet, server::ServerId dest,
                     std::function<void(bool)> done);

  /// Gracefully remove an *empty* server from the cluster (no recovery is
  /// triggered). Returns false while the server still owns tablets.
  bool decommissionServer(server::ServerId id);

  bool migrationInProgress() const { return !activeMigrations_.empty(); }
  std::uint64_t migrationsCompleted() const { return migrationsCompleted_; }

  /// Declare a server dead (the detector calls this; tests/harness may
  /// call it directly to skip detection latency).
  void onServerDead(server::ServerId id);

  server::RecoveryPlanPtr planById(std::uint64_t id) const;

  bool recoveryInProgress() const { return !activeRecoveries_.empty(); }
  const std::vector<RecoveryRecord>& recoveryLog() const {
    return recoveryLog_;
  }

  // ----- minitransaction orphan resolution (docs/TRANSACTIONS.md)

  std::uint64_t txResolutionsStarted() const { return txResolutionsStarted_; }
  std::uint64_t txResolutionsCommitted() const {
    return txResolutionsCommitted_;
  }
  std::uint64_t txResolutionsAborted() const { return txResolutionsAborted_; }
  std::uint64_t txResolutionsAbandoned() const {
    return txResolutionsAbandoned_;
  }
  bool txResolutionInProgress() const { return !activeTxResolutions_.empty(); }

  /// Harness hooks.
  std::function<void(server::ServerId)> onCrashDetected;
  std::function<void(const RecoveryRecord&)> onRecoveryFinished;
  /// Fires when a recovery is admitted (before the setup delay): the
  /// fault injector uses it for "during recovery N" trigger conditions.
  std::function<void(std::uint64_t recoveryId, server::ServerId crashed)>
      onRecoveryStarted;

  /// Attach the cluster's event journal: the coordinator emits the root
  /// "recovery" span plus failure_detection / will_lookup /
  /// partition_assignment / tablet_remap children for every recovery, and
  /// ownership_transfer events for migrations. nullptr disables.
  void setJournal(obs::EventJournal* journal) { journal_ = journal; }

 private:
  struct ActiveRecovery {
    std::uint64_t recoveryId = 0;
    server::ServerId crashed = node::kInvalidNode;
    sim::SimTime detectedAt = 0;
    std::vector<bool> partitionDone;
    std::vector<server::PartitionSpec> partitions;  ///< global partition specs
    std::unordered_map<std::uint64_t, int>
        planPartitionBase;  ///< planId -> partition-index offset (0 for the
                            ///< initial plan; retries get 1-partition plans)
    std::vector<server::ServerId> partitionOwner;
    int remaining = 0;
    int retries = 0;

    // Journal spans (0 when tracing is off).
    std::uint64_t rootSpan = 0;
    std::uint64_t lookupSpan = 0;
  };

  struct ActiveMigration {
    server::Tablet tablet;
    server::ServerId from = node::kInvalidNode;
    server::ServerId to = node::kInvalidNode;
    std::function<void(bool)> done;
  };
  void onMigrationDone(const net::RpcRequest& req);

  void sweepLeases();

  /// Cooperative termination for an orphaned minitransaction: query every
  /// participant's vote, derive the Sinfonia decision (any committed →
  /// commit; all prepared → commit; any no-vote/aborted → abort), fan the
  /// decision out. Abandons (and lets the participant sweep re-request) on
  /// any unreachable participant.
  void startTxResolution(
      std::uint64_t txId, std::uint64_t txClient,
      std::vector<std::pair<std::uint64_t, std::uint64_t>> participants);

  void pingAll();
  void onPingMiss(server::ServerId id);
  void beginRecovery(server::ServerId id);
  void buildAndStartPlan(ActiveRecovery& rec);
  server::RecoveryPlanPtr buildPlan(
      ActiveRecovery& rec, const std::vector<int>& partitionsToRun,
      const std::vector<server::ServerId>& masters);
  void onRecoveryDone(std::uint64_t planId, int planPartition, bool failed);
  void retryPartition(ActiveRecovery& rec, int globalPartition);
  void finishRecovery(ActiveRecovery& rec, bool success);

  node::Node& node_;
  net::RpcSystem& rpc_;
  const server::ServiceDirectory& directory_;
  CoordinatorParams params_;
  sim::Rng rng_;

  std::vector<server::ServerId> up_;
  std::unordered_map<server::ServerId, int> pingMisses_;
  /// Open "failure_detection" span per suspected server: begins at the
  /// first missed ping, ends at declared-dead (and is linked under the
  /// recovery root), abandoned if the server answers again.
  std::unordered_map<server::ServerId, obs::EventJournal::SpanId>
      detectSpans_;
  obs::EventJournal* journal_ = nullptr;
  TabletMap map_;
  std::uint64_t nextTableId_ = 1;
  std::uint64_t nextPlanId_ = 1;
  std::uint64_t nextRecoveryId_ = 1;
  std::map<std::string, std::uint64_t> tablesByName_;

  std::unordered_map<std::uint64_t, server::RecoveryPlanPtr> plans_;
  /// planId -> recoveryId
  std::unordered_map<std::uint64_t, std::uint64_t> planRecovery_;
  std::unordered_map<std::uint64_t, ActiveRecovery> activeRecoveries_;
  std::vector<RecoveryRecord> recoveryLog_;
  std::vector<ActiveMigration> activeMigrations_;
  std::uint64_t migrationsCompleted_ = 0;

  std::unique_ptr<sim::PeriodicTask> detector_;

  /// clientId -> lease expiry time. The sweep drops expired entries.
  std::unordered_map<std::uint64_t, sim::SimTime> leases_;
  std::uint64_t nextClientId_ = 1;
  std::uint64_t leasesIssued_ = 0;
  std::uint64_t leaseRenewals_ = 0;
  std::uint64_t leasesExpired_ = 0;
  std::unique_ptr<sim::PeriodicTask> leaseSweep_;

  /// txIds currently being resolved — dedups the participant sweeps' many
  /// concurrent kTxResolve requests for the same transaction.
  std::set<std::uint64_t> activeTxResolutions_;
  std::uint64_t txResolutionsStarted_ = 0;
  std::uint64_t txResolutionsCommitted_ = 0;
  std::uint64_t txResolutionsAborted_ = 0;
  std::uint64_t txResolutionsAbandoned_ = 0;
};

}  // namespace rc::coordinator
