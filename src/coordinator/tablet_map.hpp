#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "server/common.hpp"

namespace rc::coordinator {

/// Global table/tablet metadata, owned by the coordinator and cached by
/// clients (version-stamped so stale caches are detectable).
class TabletMap {
 public:
  enum class TabletState { kUp, kRecovering };

  struct Entry {
    server::Tablet tablet;
    TabletState state = TabletState::kUp;
  };

  std::uint64_t version() const { return version_; }
  const std::vector<Entry>& entries() const { return entries_; }

  /// The entry covering (tableId, hash), or nullptr.
  const Entry* lookup(std::uint64_t tableId, std::uint64_t hash) const;

  void addTablet(const server::Tablet& t);

  /// Mark every tablet owned by `master` as recovering.
  void markRecovering(server::ServerId master);

  /// Replace the (recovering) subrange [start,end] of `tableId` previously
  /// owned by `from` with an up tablet owned by `to`.
  void reassign(std::uint64_t tableId, std::uint64_t start, std::uint64_t end,
                server::ServerId from, server::ServerId to);

  std::vector<server::Tablet> tabletsOwnedBy(server::ServerId master) const;

  bool anyRecovering() const;

 private:
  std::vector<Entry> entries_;
  std::uint64_t version_ = 1;
};

}  // namespace rc::coordinator
