#include "coordinator/tablet_map.hpp"

namespace rc::coordinator {

const TabletMap::Entry* TabletMap::lookup(std::uint64_t tableId,
                                          std::uint64_t hash) const {
  for (const Entry& e : entries_) {
    if (e.tablet.covers(tableId, hash)) return &e;
  }
  return nullptr;
}

void TabletMap::addTablet(const server::Tablet& t) {
  entries_.push_back(Entry{t, TabletState::kUp});
  ++version_;
}

void TabletMap::markRecovering(server::ServerId master) {
  bool changed = false;
  for (Entry& e : entries_) {
    if (e.tablet.owner == master && e.state == TabletState::kUp) {
      e.state = TabletState::kRecovering;
      changed = true;
    }
  }
  if (changed) ++version_;
}

void TabletMap::reassign(std::uint64_t tableId, std::uint64_t start,
                         std::uint64_t end, server::ServerId from,
                         server::ServerId to) {
  // Split out the subrange from any overlapping tablet owned by `from`.
  std::vector<Entry> result;
  result.reserve(entries_.size() + 2);
  for (const Entry& e : entries_) {
    const server::Tablet& t = e.tablet;
    const bool overlaps = t.tableId == tableId && t.owner == from &&
                          t.startHash <= end && start <= t.endHash;
    if (!overlaps) {
      result.push_back(e);
      continue;
    }
    if (t.startHash < start) {
      Entry left = e;
      left.tablet.endHash = start - 1;
      result.push_back(left);
    }
    if (t.endHash > end) {
      Entry right = e;
      right.tablet.startHash = end + 1;
      result.push_back(right);
    }
  }
  server::Tablet fresh;
  fresh.tableId = tableId;
  fresh.startHash = start;
  fresh.endHash = end;
  fresh.owner = to;
  result.push_back(Entry{fresh, TabletState::kUp});
  entries_ = std::move(result);
  ++version_;
}

std::vector<server::Tablet> TabletMap::tabletsOwnedBy(
    server::ServerId master) const {
  std::vector<server::Tablet> out;
  for (const Entry& e : entries_) {
    if (e.tablet.owner == master) out.push_back(e.tablet);
  }
  return out;
}

bool TabletMap::anyRecovering() const {
  for (const Entry& e : entries_) {
    if (e.state == TabletState::kRecovering) return true;
  }
  return false;
}

}  // namespace rc::coordinator
