#include "net/network.hpp"

#include <algorithm>
#include <utility>

namespace rc::net {

Network::Network(sim::Simulation& sim, TransportParams params)
    : sim_(sim), params_(params) {}

sim::SimTime Network::send(node::NodeId from, node::NodeId to,
                           std::uint64_t bytes, DeliverFn deliver,
                           power::EnergyTag tag) {
  ++messagesSent_;
  bytesSent_ += bytes;
  chargeNic(from, bytes, tag);

  const sim::Duration wire = sim::secondsF(
      static_cast<double>(bytes) / (params_.bandwidthMBps * 1e6));

  sim::SimTime& txFree = txFree_[from];
  const sim::SimTime txStart = std::max(sim_.now(), txFree);
  const sim::SimTime txEnd = txStart + params_.perMessageOverhead + wire;
  txFree = txEnd;

  sim::SimTime arrival = (to == from) ? txEnd : txEnd + params_.oneWayLatency;
  if (faultFilter_) {
    const FaultVerdict v = faultFilter_(from, to, bytes);
    if (v.drop) {
      // The sender's NIC time is still charged (the bytes left the host);
      // the message just never arrives, so the caller's timeout machinery
      // takes over.
      ++messagesDropped_;
      return arrival;
    }
    arrival += v.extraLatency;
  }
  chargeNic(to, bytes, tag);
  sim_.scheduleAt(arrival, std::move(deliver));
  return arrival;
}

}  // namespace rc::net
