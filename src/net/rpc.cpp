#include "net/rpc.hpp"

#include <utility>

namespace rc::net {

const char* opcodeName(Opcode op) {
  switch (op) {
    case Opcode::kPing: return "ping";
    case Opcode::kRead: return "read";
    case Opcode::kWrite: return "write";
    case Opcode::kRemove: return "remove";
    case Opcode::kScan: return "scan";
    case Opcode::kMultiRead: return "multi_read";
    case Opcode::kMultiWrite: return "multi_write";
    case Opcode::kBackupWrite: return "backup_write";
    case Opcode::kBackupFree: return "backup_free";
    case Opcode::kGetSegmentList: return "get_segment_list";
    case Opcode::kGetRecoveryData: return "get_recovery_data";
    case Opcode::kStartRecovery: return "start_recovery";
    case Opcode::kRecoveryDone: return "recovery_done";
    case Opcode::kGetTabletMap: return "get_tablet_map";
    case Opcode::kEnlist: return "enlist";
    case Opcode::kMigrateTablet: return "migrate_tablet";
    case Opcode::kMigrationData: return "migration_data";
    case Opcode::kMigrationDone: return "migration_done";
    case Opcode::kServerListUpdate: return "server_list_update";
    case Opcode::kOpenLease: return "open_lease";
    case Opcode::kRenewLease: return "renew_lease";
    case Opcode::kTxPrepare: return "tx_prepare";
    case Opcode::kTxDecision: return "tx_decision";
    case Opcode::kTxResolve: return "tx_resolve";
    case Opcode::kTxVote: return "tx_vote";
  }
  return "unknown";
}

power::OpClass opcodeClass(Opcode op) {
  switch (op) {
    case Opcode::kRead:
    case Opcode::kScan:
    case Opcode::kMultiRead:
      return power::OpClass::kRead;
    case Opcode::kWrite:
    case Opcode::kRemove:
    case Opcode::kMultiWrite:
    case Opcode::kTxPrepare:
    case Opcode::kTxDecision:
      return power::OpClass::kUpdate;
    case Opcode::kBackupWrite:
      return power::OpClass::kReplication;
    case Opcode::kBackupFree:
    case Opcode::kGetSegmentList:
    case Opcode::kGetRecoveryData:
    case Opcode::kStartRecovery:
    case Opcode::kRecoveryDone:
      return power::OpClass::kRecovery;
    case Opcode::kMigrateTablet:
    case Opcode::kMigrationData:
    case Opcode::kMigrationDone:
      return power::OpClass::kMigration;
    case Opcode::kPing:
    case Opcode::kGetTabletMap:
    case Opcode::kEnlist:
    case Opcode::kServerListUpdate:
    case Opcode::kOpenLease:
    case Opcode::kRenewLease:
    case Opcode::kTxResolve:
    case Opcode::kTxVote:
      return power::OpClass::kControl;
  }
  return power::OpClass::kUnattributed;
}

RpcSystem::RpcSystem(sim::Simulation& sim, Network& net)
    : sim_(sim), net_(net) {}

void RpcSystem::bind(node::NodeId node, int port, RpcService* service) {
  services_[addrKey(node, port)] = service;
}

void RpcSystem::unbind(node::NodeId node, int port) {
  services_.erase(addrKey(node, port));
}

bool RpcSystem::isBound(node::NodeId node, int port) const {
  return services_.count(addrKey(node, port)) > 0;
}

RpcSystem::TxSlot* RpcSystem::TxArena::acquire(RpcRequest req) {
  TxSlot* slot = free;
  if (slot != nullptr) {
    free = slot->next;
    slot->next = nullptr;
  } else {
    slots.push_back(std::make_unique<TxSlot>());
    slot = slots.back().get();
  }
  slot->req = std::move(req);
  return slot;
}

void RpcSystem::TxArena::release(TxSlot* slot) {
  slot->req = RpcRequest{};  // drop the shared key list promptly
  slot->next = free;
  free = slot;
}

void RpcSystem::call(node::NodeId from, node::NodeId to, int port,
                     RpcRequest req, sim::Duration timeout, ResponseFn cb) {
  const std::uint64_t rpcId = nextRpcId_++;

  const sim::EventId timeoutEvent = sim_.schedule(timeout, [this, rpcId] {
    auto it = outstanding_.find(rpcId);
    if (it == outstanding_.end()) return;
    ResponseFn cb = std::move(it->second.cb);
    ++opTimeouts_[static_cast<std::size_t>(it->second.op)];
    outstanding_.erase(it);
    ++timeouts_;
    RpcResponse resp;
    resp.status = Status::kTimeout;
    cb(resp);
  });
  const std::uint64_t wireBytes = kRpcHeaderBytes + req.payloadBytes;
  const power::EnergyTag tag{opcodeClass(req.op), req.tenant};
  outstanding_[rpcId] = Pending{std::move(cb), timeoutEvent, req.op};

  TxHandle tx(txArena_, txArena_->acquire(std::move(req)));
  net_.send(from, to, wireBytes,
            [this, rpcId, from, to, port, tag, tx = std::move(tx)] {
    auto it = services_.find(addrKey(to, port));
    if (it == services_.end()) return;  // dead service: caller times out
    RpcService* service = it->second;
    auto respond = [this, rpcId, from, to, tag](RpcResponse resp) {
      net_.send(to, from, kRpcHeaderBytes + resp.payloadBytes,
                [this, rpcId, resp] {
        auto p = outstanding_.find(rpcId);
        if (p == outstanding_.end()) return;  // already timed out
        sim_.cancel(p->second.timeoutEvent);
        ResponseFn cb = std::move(p->second.cb);
        outstanding_.erase(p);
        cb(resp);
      }, tag);
    };
    service->handleRpc(tx.req(), from, std::move(respond));
  }, tag);
}

}  // namespace rc::net
