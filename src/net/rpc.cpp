#include "net/rpc.hpp"

#include <utility>

namespace rc::net {

RpcSystem::RpcSystem(sim::Simulation& sim, Network& net)
    : sim_(sim), net_(net) {}

void RpcSystem::bind(node::NodeId node, int port, RpcService* service) {
  services_[addrKey(node, port)] = service;
}

void RpcSystem::unbind(node::NodeId node, int port) {
  services_.erase(addrKey(node, port));
}

bool RpcSystem::isBound(node::NodeId node, int port) const {
  return services_.count(addrKey(node, port)) > 0;
}

void RpcSystem::call(node::NodeId from, node::NodeId to, int port,
                     RpcRequest req, sim::Duration timeout, ResponseFn cb) {
  const std::uint64_t rpcId = nextRpcId_++;

  const sim::EventId timeoutEvent = sim_.schedule(timeout, [this, rpcId] {
    auto it = outstanding_.find(rpcId);
    if (it == outstanding_.end()) return;
    ResponseFn cb = std::move(it->second.cb);
    outstanding_.erase(it);
    ++timeouts_;
    RpcResponse resp;
    resp.status = Status::kTimeout;
    cb(resp);
  });
  outstanding_[rpcId] = Pending{std::move(cb), timeoutEvent};

  net_.send(from, to, kRpcHeaderBytes + req.payloadBytes,
            [this, rpcId, from, to, port, req] {
    auto it = services_.find(addrKey(to, port));
    if (it == services_.end()) return;  // dead service: caller times out
    RpcService* service = it->second;
    auto respond = [this, rpcId, from, to](RpcResponse resp) {
      net_.send(to, from, kRpcHeaderBytes + resp.payloadBytes,
                [this, rpcId, resp] {
        auto p = outstanding_.find(rpcId);
        if (p == outstanding_.end()) return;  // already timed out
        sim_.cancel(p->second.timeoutEvent);
        ResponseFn cb = std::move(p->second.cb);
        outstanding_.erase(p);
        cb(resp);
      });
    };
    service->handleRpc(req, from, std::move(respond));
  });
}

}  // namespace rc::net
