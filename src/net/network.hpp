#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "node/node.hpp"
#include "power/energy_model.hpp"
#include "sim/inline_task.hpp"
#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace rc::net {

/// Point-to-point transport characteristics.
struct TransportParams {
  sim::Duration oneWayLatency = sim::usec(2);
  double bandwidthMBps = 2000.0;          ///< per-NIC serialisation rate
  sim::Duration perMessageOverhead = sim::nsec(300);

  /// Mellanox Infiniband-20G as on the Nancy nodes (the paper uses the
  /// Infiniband transport exclusively; kernel-bypass polling gives ~4-5 us
  /// RTTs for small RPCs).
  static TransportParams infiniband() {
    return TransportParams{sim::usec(2), 2000.0, sim::nsec(300)};
  }

  /// The nodes' Gigabit Ethernet card (kernel TCP): included for the
  /// companion study's comparisons and for tests.
  static TransportParams gigabitEthernet() {
    return TransportParams{sim::usec(30), 117.0, sim::usec(2)};
  }
};

/// Message-passing fabric between nodes.
///
/// Delivery time = sender-NIC serialisation (per-sender FIFO at
/// bandwidthMBps) + one-way latency. Receive-side CPU costs are modelled by
/// the services themselves (dispatch thread), not here.
class Network {
 public:
  using DeliverFn = sim::InlineTask;

  /// Fault-injection verdict for one message (see fault::FaultInjector).
  /// drop: the message vanishes after the sender serialised it — the
  /// receiver never runs `deliver`, so the RPC layer's timeout fires.
  /// extraLatency: added to the one-way flight time (latency spikes,
  /// degraded links).
  struct FaultVerdict {
    bool drop = false;
    sim::Duration extraLatency = 0;
  };
  using FaultFilter =
      std::function<FaultVerdict(node::NodeId, node::NodeId, std::uint64_t)>;

  Network(sim::Simulation& sim, TransportParams params);

  /// Sends `bytes` from `from` to `to`; `deliver` runs at the receiver's
  /// arrival time. Returns the scheduled arrival time. `tag` labels the
  /// frame for NIC energy attribution: the sender is always charged (the
  /// bytes left the host even when a fault drops the frame), the receiver
  /// only on delivery.
  sim::SimTime send(node::NodeId from, node::NodeId to, std::uint64_t bytes,
                    DeliverFn deliver,
                    power::EnergyTag tag = power::EnergyTag{});

  /// Consulted for every message; null disables injection.
  void setFaultFilter(FaultFilter f) { faultFilter_ = std::move(f); }

  /// NIC energy attribution: register each metered node once; send() then
  /// calls Node::chargeNic inline for both endpoints of every frame —
  /// no function-object indirection on the per-frame hot path.
  /// clearNicEnergy() removes every registration (the off side of the
  /// `bench_selfperf --energy-overhead` A/B); unregistered node ids
  /// (clients, the coordinator) are simply skipped.
  void setNicEnergyNode(node::NodeId id, node::Node* n) {
    const auto slot = static_cast<std::size_t>(id);
    if (nicNodes_.size() <= slot) nicNodes_.resize(slot + 1, nullptr);
    nicNodes_[slot] = n;
  }
  void clearNicEnergy() { nicNodes_.clear(); }

  const TransportParams& params() const { return params_; }

  std::uint64_t messagesSent() const { return messagesSent_; }
  std::uint64_t bytesSent() const { return bytesSent_; }
  std::uint64_t messagesDropped() const { return messagesDropped_; }

 private:
  sim::Simulation& sim_;
  TransportParams params_;
  std::unordered_map<node::NodeId, sim::SimTime> txFree_;
  void chargeNic(node::NodeId id, std::uint64_t bytes, power::EnergyTag tag) {
    const auto slot = static_cast<std::size_t>(id);
    if (slot < nicNodes_.size() && nicNodes_[slot] != nullptr) {
      nicNodes_[slot]->chargeNic(bytes, tag);
    }
  }

  FaultFilter faultFilter_;
  std::vector<node::Node*> nicNodes_;
  std::uint64_t messagesSent_ = 0;
  std::uint64_t bytesSent_ = 0;
  std::uint64_t messagesDropped_ = 0;
};

}  // namespace rc::net
