#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/network.hpp"
#include "node/node.hpp"
#include "power/energy_model.hpp"
#include "sim/simulation.hpp"

namespace rc::net {

/// RPC operations understood by the cluster's services.
enum class Opcode : std::uint8_t {
  kPing,
  kRead,
  kWrite,
  kRemove,
  kScan,       ///< enumerate a tablet's objects (paper SS X future work)
  kMultiRead,  ///< batched reads (RAMCloud's multiRead API)
  kMultiWrite, ///< batched writes
  kBackupWrite,        ///< master -> backup: replicate segment data
  kBackupFree,         ///< coordinator -> backup: drop dead master's frames
  kGetSegmentList,     ///< coordinator -> backup: frames held for a master
  kGetRecoveryData,    ///< recovery master -> backup: filtered segment data
  kStartRecovery,      ///< coordinator -> recovery master
  kRecoveryDone,       ///< recovery master -> coordinator
  kGetTabletMap,       ///< client -> coordinator
  kEnlist,             ///< server -> coordinator (registration)
  kMigrateTablet,      ///< coordinator -> source master: start migration
  kMigrationData,      ///< source master -> destination master: batch
  kMigrationDone,      ///< source master -> coordinator
  kServerListUpdate,   ///< coordinator -> masters: a server was declared dead
  kOpenLease,          ///< client -> coordinator: obtain a client id + lease
  kRenewLease,         ///< client -> coordinator: extend an existing lease
  kTxPrepare,          ///< tx client -> participant master: lock + vote
  kTxDecision,         ///< tx client/coordinator -> participant: commit/abort
  kTxResolve,          ///< participant master -> coordinator: orphan tx found
  kTxVote,             ///< coordinator -> participant: query vote status
};

constexpr std::size_t kOpcodeCount =
    static_cast<std::size_t>(Opcode::kTxVote) + 1;

/// Stable lower-case name for metric paths ("net.rpc.timeouts.<opcode>").
const char* opcodeName(Opcode op);

/// Energy-attribution class of an opcode (docs/ENERGY.md): data-path reads
/// and updates, replication, recovery, migration, and control-plane chatter
/// each land in their own ledger row.
power::OpClass opcodeClass(Opcode op);

enum class Status : std::uint8_t {
  kOk,
  kTimeout,        ///< synthesised client-side when no reply arrives
  kUnknownTablet,  ///< wrong/stale routing: refresh the tablet map
  kRecovering,     ///< tablet currently being recovered: back off and retry
  kError,
  kOverloaded,  ///< shed by dispatch admission control; reply carries a
                ///< retry-after hint (ns) in `a` — back off, charge the
                ///< retry budget, reissue (docs/OVERLOAD.md)
  kVersionMismatch,  ///< conditional write rejected: reply carries current
                     ///< version in `b`
  kExpiredLease,     ///< master no longer tracks this client: reopen lease
  kStaleRpc,         ///< rpcSeq below the client's own firstUnacked watermark
  kTxConflict,       ///< tx prepare vote-no: object locked by another tx, or
                     ///< the transaction was already fenced aborted
};

/// Compact wire format: an opcode plus a few op-specific integer fields and
/// a payload size (bytes actually occupy simulated wire/CPU time; contents
/// are carried out-of-band through the simulator's shared memory).
struct RpcRequest {
  Opcode op = Opcode::kPing;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
  std::uint64_t d = 0;
  std::uint64_t payloadBytes = 0;
  /// obs::TimeTrace span carried with the request (0 = untraced). Servers
  /// stamp pipeline stages against it; costs nothing on the wire.
  std::uint64_t traceSpan = 0;
  /// Tenant/op-class tag propagated alongside the span (0 = untagged).
  /// Lets servers attribute flight-recorder stamps and future QoS
  /// decisions to the issuing tenant even for RPCs whose span the client
  /// has already abandoned (docs/SLO.md).
  std::uint16_t tenant = 0;
  /// Linearizability header (docs/LINEARIZABILITY.md). clientId == 0 means
  /// the RPC is untracked (at-least-once, the pre-RIFL behaviour); batched
  /// and bulk-load paths stay untracked. A retried RPC carries the *same*
  /// (clientId, rpcSeq), which is what lets the owner suppress duplicates.
  std::uint64_t clientId = 0;
  std::uint64_t rpcSeq = 0;
  std::uint64_t firstUnacked = 0;  ///< master may GC results below this
  /// Batched-op key list (kMultiRead/kMultiWrite). Shared so the copy in
  /// flight costs nothing; the wire bytes are charged via payloadBytes.
  std::shared_ptr<const std::vector<std::uint64_t>> keys;
};

struct RpcResponse {
  Status status = Status::kOk;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
  std::uint64_t payloadBytes = 0;
};

constexpr std::uint64_t kRpcHeaderBytes = 96;

/// Well-known service ports.
constexpr int kMasterPort = 1;
constexpr int kBackupPort = 2;
constexpr int kCoordinatorPort = 3;

/// A service bound to (node, port). `respond` must be invoked at most once;
/// never invoking it (e.g. because the process died) surfaces as a client
/// timeout, exactly like the real system.
class RpcService {
 public:
  virtual ~RpcService() = default;
  /// Move-only so continuations can own it without heap allocation; may
  /// capture pooled request state.
  using Responder = sim::InlineFunction<void(RpcResponse)>;
  virtual void handleRpc(const RpcRequest& req, node::NodeId from,
                         Responder respond) = 0;
};

/// Cluster-wide RPC fabric with timeouts.
class RpcSystem {
 public:
  using ResponseFn = sim::InlineFunction<void(const RpcResponse&)>;

  RpcSystem(sim::Simulation& sim, Network& net);

  void bind(node::NodeId node, int port, RpcService* service);
  void unbind(node::NodeId node, int port);
  bool isBound(node::NodeId node, int port) const;

  /// Issue an RPC. `cb` is invoked exactly once: with the response, or with
  /// Status::kTimeout after `timeout` elapses without one.
  void call(node::NodeId from, node::NodeId to, int port, RpcRequest req,
            sim::Duration timeout, ResponseFn cb);

  std::uint64_t timeoutsObserved() const { return timeouts_; }

  /// Timeouts attributed to the request's opcode (stall attribution for
  /// chaos runs and rcdiag).
  std::uint64_t timeoutsForOpcode(Opcode op) const {
    return opTimeouts_[static_cast<std::size_t>(op)];
  }

 private:
  struct Pending {
    ResponseFn cb;
    sim::EventId timeoutEvent;
    Opcode op = Opcode::kPing;
  };
  static std::uint64_t addrKey(node::NodeId n, int port) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(n)) << 16) |
           static_cast<std::uint64_t>(port);
  }

  /// Pooled in-flight request storage: the request travels the wire as a
  /// pointer into this free-list arena instead of being copied into (and
  /// heap-allocated by) the delivery closure. Released when the delivery
  /// event runs — or when it is destroyed undelivered (message dropped).
  /// The arena is shared-owned: pending delivery events can outlive the
  /// RpcSystem (the Simulation's event heap drains last at teardown), so
  /// each handle keeps the arena alive until it has released its slot.
  struct TxSlot {
    RpcRequest req;
    TxSlot* next = nullptr;
  };
  struct TxArena {
    std::vector<std::unique_ptr<TxSlot>> slots;
    TxSlot* free = nullptr;
    TxSlot* acquire(RpcRequest req);
    void release(TxSlot* slot);
  };
  class TxHandle {
   public:
    TxHandle(std::shared_ptr<TxArena> arena, TxSlot* slot)
        : arena_(std::move(arena)), slot_(slot) {}
    TxHandle(TxHandle&& o) noexcept
        : arena_(std::move(o.arena_)), slot_(o.slot_) {
      o.slot_ = nullptr;
    }
    TxHandle(const TxHandle&) = delete;
    TxHandle& operator=(const TxHandle&) = delete;
    TxHandle& operator=(TxHandle&&) = delete;
    ~TxHandle() {
      if (slot_ != nullptr) arena_->release(slot_);
    }
    const RpcRequest& req() const { return slot_->req; }

   private:
    std::shared_ptr<TxArena> arena_;
    TxSlot* slot_;
  };

  sim::Simulation& sim_;
  Network& net_;
  std::unordered_map<std::uint64_t, RpcService*> services_;
  std::unordered_map<std::uint64_t, Pending> outstanding_;
  std::shared_ptr<TxArena> txArena_ = std::make_shared<TxArena>();
  std::uint64_t nextRpcId_ = 1;
  std::uint64_t timeouts_ = 0;
  std::array<std::uint64_t, kOpcodeCount> opTimeouts_{};
};

}  // namespace rc::net
